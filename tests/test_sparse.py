"""The sparse-k source-interpolation fast path.

Pins the accuracy contract of :mod:`repro.spectra.sparse` from three
directions:

* **exact hits** — a factor-1 "sparse" sweep is the dense sweep: the
  LOS C_l must be *bitwise* equal to :func:`cl_from_los` of the same
  run, and ``run_linger(sparse_k=1)`` under the frozen golden settings
  must reproduce ``tests/data/golden_cl.json`` bitwise (the factor-1
  grid carries identical floats, so no trajectory can move);
* **convergence** — on a uniform dense grid the C_l error against the
  factor-1 reference must shrink monotonically as the coarse grid
  refines through factors 8 -> 4 -> 2 (the k-spline error scales as
  ``(factor * dk)^4``);
* **plumbing** — coarse-grid construction, source stacking, metric
  telemetry, the PLINGER ``collect_modes`` path and every validation
  error the driver promises.

The dense convergence run integrates 33 cheap modes once per module;
everything else rides on the session-scoped ``linger_small`` fixture.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import KGrid, LingerConfig, ParameterError, run_linger
from repro.linger.kgrid import sparse_kgrid
from repro.spectra import (
    cl_from_los,
    coarse_subset,
    interpolate_sources_k,
    run_sparse_cl,
    sources_from_result,
    sparse_cl,
)
from repro.spectra.cl import cl_from_hierarchy, los_l_grid
from repro.spectra.sparse import sparse_sources
from repro.telemetry import RunReport, SparseMetrics, Telemetry

GOLDEN_CL = Path(__file__).parent / "data" / "golden_cl.json"


# -- coarse grid construction ------------------------------------------------


class TestSparseKGrid:
    def test_subset_with_endpoints(self):
        kg = KGrid.from_k(np.linspace(0.001, 0.01, 10))
        coarse = sparse_kgrid(kg, 3)
        # indices 0, 3, 6, 9 — the last dense point is already hit
        assert np.array_equal(coarse.k, kg.k[[0, 3, 6, 9]])

    def test_endpoint_appended_when_stride_misses(self):
        kg = KGrid.from_k(np.linspace(0.001, 0.01, 8))
        coarse = sparse_kgrid(kg, 3)
        assert np.array_equal(coarse.k, kg.k[[0, 3, 6, 7]])

    def test_factor_one_is_identity(self):
        kg = KGrid.from_k(np.geomspace(1e-4, 0.1, 17))
        assert np.array_equal(sparse_kgrid(kg, 1).k, kg.k)

    def test_factor_beyond_nk_keeps_endpoints(self):
        kg = KGrid.from_k(np.linspace(0.001, 0.01, 6))
        coarse = sparse_kgrid(kg, 100)
        assert np.array_equal(coarse.k, kg.k[[0, 5]])

    def test_invalid_factors_rejected(self):
        kg = KGrid.from_k([0.001, 0.01])
        with pytest.raises(ParameterError, match="integer >= 1"):
            sparse_kgrid(kg, 0)
        with pytest.raises(ParameterError, match="integer >= 1"):
            sparse_kgrid(kg, 2.5)


# -- k-interpolation of stacked sources --------------------------------------


class TestInterpolateSourcesK:
    def test_exact_nodes_are_bitwise_rows(self):
        k_c = np.array([1.0, 2.0, 3.0, 4.0])
        rows = np.sin(np.outer(k_c, np.linspace(0, 5, 30)))
        k_d = np.array([1.0, 1.5, 2.0, 3.0, 3.7, 4.0])
        out = interpolate_sources_k(k_c, rows, k_d)
        for i, j in ((0, 0), (2, 1), (3, 2), (5, 3)):
            assert np.array_equal(out[i], rows[j])

    def test_smooth_data_interpolates_accurately(self):
        k_c = np.linspace(1.0, 2.0, 9)
        tau = np.linspace(0, 1, 20)
        rows = np.exp(-np.outer(k_c, tau))
        k_d = np.linspace(1.0, 2.0, 33)
        out = interpolate_sources_k(k_c, rows, k_d)
        exact = np.exp(-np.outer(k_d, tau))
        assert np.max(np.abs(out - exact)) < 1e-5

    def test_validation_errors(self):
        k_c = np.array([1.0, 2.0, 3.0])
        rows = np.zeros((3, 5))
        with pytest.raises(ParameterError, match=">= 2 coarse"):
            interpolate_sources_k([1.0], np.zeros((1, 5)), [1.0])
        with pytest.raises(ParameterError, match="strictly increasing"):
            interpolate_sources_k([1.0, 1.0, 2.0], rows, [1.5])
        with pytest.raises(ParameterError, match="source matrix"):
            interpolate_sources_k(k_c, np.zeros((4, 5)), [1.5])
        with pytest.raises(ParameterError, match="extrapolate"):
            interpolate_sources_k(k_c, rows, [0.5])


# -- exact hits: factor 1 is the dense path ----------------------------------


class TestExactHits:
    def test_factor1_cl_bitwise_vs_dense_los(self, linger_small):
        l_values = np.arange(2, 16)
        _, cl_dense = cl_from_los(linger_small, l_values)
        res = sparse_cl(coarse_subset(linger_small, 1),
                        linger_small.kgrid, l_values, sparse_factor=1)
        assert np.array_equal(res.cl, cl_dense)
        assert res.metrics.exact_hits == linger_small.kgrid.nk
        assert res.metrics.interpolated == 0

    def test_exact_hit_rows_are_bitwise_coarse_sources(self, linger_small):
        coarse = coarse_subset(linger_small, 2)
        coarse_tables = sources_from_result(coarse)
        sources, stats = sparse_sources(coarse, linger_small.kgrid)
        assert stats["exact_hits"] == coarse.kgrid.nk
        assert stats["interpolated"] == (linger_small.kgrid.nk
                                         - coarse.kgrid.nk)
        by_k = {s.k: s for s in coarse_tables}
        for s in sources:
            if s.k in by_k:
                ref = by_k[s.k]
                assert np.array_equal(s.tau, ref.tau)
                assert np.array_equal(s.source, ref.source)

    @pytest.mark.golden
    def test_sparse_k1_reproduces_golden_bitwise(self, scdm, bg_scdm,
                                                 thermo_scdm):
        """``run_linger(sparse_k=1)`` carries identical grid floats, so
        the frozen golden C_l must come back bitwise — the fast path
        may not perturb a dense sweep at all."""
        blob = json.loads(GOLDEN_CL.read_text())
        grid = blob["settings"]["kgrid"]
        kg = KGrid.from_k(np.geomspace(grid["k_min"], grid["k_max"],
                                       grid["nk"]))
        cfg = LingerConfig(**blob["settings"]["config"])
        run = run_linger(scdm, kg, cfg, background=bg_scdm,
                         thermo=thermo_scdm, sparse_k=1)
        l, cl = cl_from_hierarchy(run)
        assert np.array_equal(l, np.asarray(blob["l"]))
        assert np.array_equal(cl, np.asarray(blob["cl"], dtype=float))


# -- convergence: error shrinks as the coarse grid refines -------------------


@pytest.fixture(scope="module")
def dense_uniform(scdm, bg_scdm, thermo_scdm):
    """A 33-mode uniform-grid run: the convergence-study reference."""
    kg = KGrid.from_k(np.linspace(3e-4, 0.03, 33))
    cfg = LingerConfig(lmax_photon=12, lmax_nu=8, rtol=1e-4)
    return run_linger(scdm, kg, cfg, background=bg_scdm,
                      thermo=thermo_scdm, batch_size=8)


class TestConvergence:
    def test_error_shrinks_monotonically(self, dense_uniform):
        l_values = np.arange(2, 10)
        _, cl_ref = cl_from_los(dense_uniform, l_values)
        errs = {}
        for factor in (8, 4, 2):
            res = sparse_cl(coarse_subset(dense_uniform, factor),
                            dense_uniform.kgrid, l_values,
                            sparse_factor=factor)
            errs[factor] = float(np.max(np.abs(res.cl / cl_ref - 1.0)))
        assert errs[2] < errs[4] < errs[8]
        # measured 2.2e-2 / 7.0e-2 / 7.9e-2 on this grid
        assert errs[2] < 0.05

    def test_mode_reduction_reported(self, dense_uniform):
        res = sparse_cl(coarse_subset(dense_uniform, 8),
                        dense_uniform.kgrid, np.arange(2, 6),
                        sparse_factor=8)
        assert res.metrics.n_coarse == 5
        assert res.metrics.n_dense == 33
        assert res.metrics.mode_reduction >= 4.0
        assert res.metrics.interp_residual_max is not None
        assert res.metrics.interp_residual_max > 0.0


# -- driver validation and the PLINGER path ----------------------------------


class TestRunSparseCl:
    def test_requires_recorded_sources(self, scdm):
        with pytest.raises(ParameterError, match="record_sources"):
            run_sparse_cl(scdm, KGrid.from_k([0.001, 0.01]),
                          LingerConfig(record_sources=False,
                                       keep_mode_results=False))

    def test_serial_end_to_end(self, scdm, bg_scdm, thermo_scdm,
                               linger_small):
        l_values = np.arange(2, 10)
        res = run_sparse_cl(
            scdm, linger_small.kgrid, linger_small.config,
            sparse_factor=2, l_values=l_values,
            background=bg_scdm, thermo=thermo_scdm,
        )
        assert res.coarse_result.kgrid.nk == 5
        assert len(res.sources) == linger_small.kgrid.nk
        assert np.all(res.cl > 0)
        # the coarse modes were genuinely integrated: their C_l
        # contribution matches the dense run's at the exact-hit k
        _, cl_dense = cl_from_los(linger_small, l_values)
        assert np.max(np.abs(res.cl / cl_dense - 1.0)) < 0.1

    def test_plinger_backend_matches_serial(self, scdm, bg_scdm,
                                            thermo_scdm, linger_small):
        l_values = np.arange(2, 8)
        serial = run_sparse_cl(
            scdm, linger_small.kgrid, linger_small.config,
            sparse_factor=4, l_values=l_values,
            background=bg_scdm, thermo=thermo_scdm,
        )
        plinger = run_sparse_cl(
            scdm, linger_small.kgrid, linger_small.config,
            sparse_factor=4, l_values=l_values,
            background=bg_scdm, thermo=thermo_scdm,
            backend="inprocess", nproc=2,
        )
        # thread-hosted workers run the same serial kernels on the same
        # floats, so the collected modes — and the C_l — are bitwise
        assert np.array_equal(plinger.cl, serial.cl)

    def test_sparse_sources_rejects_foreign_grid(self, linger_small):
        with pytest.raises(ParameterError, match="subset of the dense"):
            sparse_sources(coarse_subset(linger_small, 2),
                           KGrid.from_k(np.geomspace(4e-4, 0.02, 12)))

    def test_coarse_subset_invalid_factor(self, linger_small):
        with pytest.raises(ParameterError, match="integer >= 1"):
            coarse_subset(linger_small, -1)


# -- telemetry ----------------------------------------------------------------


class TestSparseMetrics:
    def test_report_roundtrip(self, linger_small):
        tel = Telemetry()
        sparse_cl(coarse_subset(linger_small, 2), linger_small.kgrid,
                  np.arange(2, 8), sparse_factor=2, telemetry=tel)
        report = tel.build_report()
        assert report.sparse is not None
        assert report.totals["sparse_factor"] == 2
        assert report.totals["sparse_mode_reduction"] == pytest.approx(8 / 5)
        blob = json.dumps(report.to_dict())
        again = RunReport.from_dict(json.loads(blob))
        assert isinstance(again.sparse, SparseMetrics)
        assert again.sparse.n_coarse == 5
        assert again.sparse.n_dense == 8
        assert again.sparse.exact_hits == 5
        assert again.sparse.interp_residual_max == \
            report.sparse.interp_residual_max

    def test_absent_section_roundtrips_none(self):
        report = Telemetry().build_report()
        assert report.sparse is None
        again = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert again.sparse is None

    def test_est_seconds_saved(self):
        m = SparseMetrics(sparse_factor=4, n_dense=40, n_coarse=10,
                          integrate_seconds=10.0, interp_seconds=1.0,
                          project_seconds=1.0, est_dense_seconds=40.0)
        assert m.mode_reduction == 4.0
        assert m.est_seconds_saved == pytest.approx(28.0)


# -- los_l_grid regression (satellite fix) -----------------------------------


class TestLosLGridSmallLmax:
    def test_never_collapses_below_l_min(self):
        """geomspace float jitter used to truncate the l_max=8 grid to
        [7, 8] — below the requested l_min."""
        grid = los_l_grid(8, n=8, l_min=8)
        assert np.array_equal(grid, [8])

    def test_small_l_max_stays_in_range(self):
        for l_max in range(2, 13):
            grid = los_l_grid(l_max)
            assert grid.min() >= 2
            assert grid.max() == l_max
            assert np.all(np.diff(grid) > 0)
