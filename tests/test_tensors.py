"""Tensor (gravitational-wave) modes and their CMB spectrum."""

import numpy as np
import pytest
from scipy.special import spherical_jn

from repro.errors import ParameterError
from repro.perturbations.tensors import (
    cl_tensor,
    evolve_tensor_mode,
    tensor_theta_l,
)


class TestTensorEvolution:
    def test_frozen_outside_horizon(self, bg_scdm):
        m = evolve_tensor_mode(bg_scdm, 1e-4, tau_end=500.0)
        assert np.max(np.abs(m.h - 1.0)) < 1e-3

    def test_radiation_era_analytic(self, bg_scdm):
        """h(tau) = j0(k tau) exactly in the radiation era."""
        k = 0.5
        m = evolve_tensor_mode(bg_scdm, k, tau_end=100.0)
        sel = m.tau < 80.0
        err = np.max(np.abs(m.h[sel] - spherical_jn(0, k * m.tau[sel])))
        assert err < 0.01

    def test_amplitude_decays_inside_horizon(self, bg_scdm):
        m = evolve_tensor_mode(bg_scdm, 0.1, tau_end=2000.0)
        late = np.abs(m.h[m.tau > 1500.0])
        assert np.max(late) < 0.05

    def test_linear_in_amplitude(self, bg_scdm):
        m1 = evolve_tensor_mode(bg_scdm, 0.05, tau_end=1000.0,
                                amplitude=1.0)
        m2 = evolve_tensor_mode(bg_scdm, 0.05, tau_end=1000.0,
                                amplitude=2.0)
        assert np.allclose(m2.h, 2.0 * m1.h, atol=1e-8)

    def test_oscillation_frequency(self, bg_scdm):
        """Inside the horizon h oscillates with frequency k: count the
        zero crossings."""
        k = 0.2
        m = evolve_tensor_mode(bg_scdm, k, tau_end=400.0, n_record=1200)
        crossings = np.count_nonzero(np.diff(np.sign(m.h)) != 0)
        expected = k * (400.0 - m.tau[0]) / np.pi
        assert crossings == pytest.approx(expected, abs=2)

    def test_negative_k_rejected(self, bg_scdm):
        with pytest.raises(ParameterError):
            evolve_tensor_mode(bg_scdm, -0.1)


class TestTensorSpectrum:
    @pytest.fixture(scope="class")
    def tensor_cl(self, bg_scdm, thermo_scdm):
        l = np.array([2, 5, 10, 30, 60, 150, 300])
        return cl_tensor(bg_scdm, thermo_scdm, l)

    def test_positive(self, tensor_cl):
        l, cl = tensor_cl
        assert np.all(cl > 0)

    def test_plateau_then_collapse(self, tensor_cl):
        """l(l+1)C_l^T is order-unity flat at low l and collapses above
        l ~ 100 (waves that entered before recombination have decayed)."""
        l, cl = tensor_cl
        llcl = l * (l + 1.0) * cl
        ratio = llcl / llcl[0]
        assert ratio[l == 60][0] > 0.15  # still on the plateau shoulder
        assert ratio[l == 300][0] < 0.02  # collapsed

    def test_l_below_two_rejected(self, bg_scdm, thermo_scdm):
        with pytest.raises(ParameterError):
            cl_tensor(bg_scdm, thermo_scdm, np.array([1, 2]),
                      k=np.array([0.001, 0.002]))

    def test_blue_tilt_boosts_small_scales(self, bg_scdm, thermo_scdm):
        k = np.linspace(3e-4, 6e-3, 12)
        l = np.array([2, 40])
        _, cl_flat = cl_tensor(bg_scdm, thermo_scdm, l, k=k, n_t=0.0)
        _, cl_blue = cl_tensor(bg_scdm, thermo_scdm, l, k=k, n_t=0.5)
        assert (cl_blue[1] / cl_blue[0]) > (cl_flat[1] / cl_flat[0])


class TestThetaL:
    def test_shape(self, bg_scdm, thermo_scdm):
        modes = [evolve_tensor_mode(bg_scdm, k) for k in (0.001, 0.003)]
        th = tensor_theta_l(modes, thermo_scdm, bg_scdm.tau0,
                            np.array([2, 3, 4]))
        assert th.shape == (2, 3)
        assert np.all(np.isfinite(th))
