"""Physical constants and derived quantities."""

import math

import pytest

from repro import constants as const


class TestFundamental:
    def test_speed_of_light(self):
        assert const.C_LIGHT == pytest.approx(2.998e10, rel=1e-3)

    def test_hbar_consistent_with_h(self):
        assert const.HBAR == pytest.approx(const.H_PLANCK / (2 * math.pi))

    def test_mpc_in_seconds(self):
        # one Mpc of light travel is about 3.26 million years
        years = const.MPC_S / 3.15576e7
        assert years == pytest.approx(3.26e6, rel=0.01)

    def test_hubble_distance(self):
        # c / (100 km/s/Mpc) = 2997.92458 Mpc
        assert const.HUBBLE_MPC == pytest.approx(
            const.C_LIGHT / (100.0 * const.KM_CM), rel=1e-9
        )


class TestRadiation:
    def test_omega_gamma_h2_matches_literature(self):
        # standard value 2.47e-5 at T = 2.726 K
        assert const.omega_gamma_h2(2.726) == pytest.approx(2.47e-5, rel=0.01)

    def test_omega_gamma_scales_as_t4(self):
        r = const.omega_gamma_h2(2.0 * 2.726) / const.omega_gamma_h2(2.726)
        assert r == pytest.approx(16.0, rel=1e-12)

    def test_neutrino_factor(self):
        # (7/8)(4/11)^(4/3) = 0.22711
        assert const.NU_MASSLESS_FACTOR == pytest.approx(0.22711, rel=1e-4)

    def test_nu_temperature_ratio(self):
        assert const.T_NU_OVER_T_GAMMA == pytest.approx(0.71377, rel=1e-4)


class TestCriticalDensity:
    def test_value_h1(self):
        # rho_crit(h=1) ~ 1.88e-29 g/cm^3
        assert const.rho_critical_cgs(1.0) == pytest.approx(1.88e-29, rel=0.01)

    def test_scales_as_h2(self):
        assert const.rho_critical_cgs(0.5) == pytest.approx(
            0.25 * const.rho_critical_cgs(1.0)
        )


class TestAtomic:
    def test_hydrogen_ionization_in_ev(self):
        assert const.E_ION_H / const.EV == pytest.approx(13.6057, rel=1e-4)

    def test_helium_ordering(self):
        assert const.E_ION_H < const.E_ION_HE1 < const.E_ION_HE2

    def test_two_photon_rate(self):
        assert const.LAMBDA_2S_1S == pytest.approx(8.227)
