"""PLINGER checkpoint/restart."""

import numpy as np
import pytest

from repro import KGrid, LingerConfig
from repro.errors import ParameterError
from repro.linger import run_linger
from repro.plinger.checkpoint import ModeJournal, run_plinger_checkpointed
from tests.test_plinger import fake_compute


@pytest.fixture
def small_grid():
    return KGrid.from_k(np.geomspace(1e-3, 0.01, 5))


@pytest.fixture
def config():
    return LingerConfig(record_sources=False, keep_mode_results=False,
                        rtol=3e-4)


class TestJournal:
    def test_round_trip(self, tmp_path):
        j = ModeJournal(tmp_path / "run.journal")
        h1, p1 = fake_compute(3)
        h2, p2 = fake_compute(7, lmax=20)
        j.append(h1, p1)
        j.append(h2, p2)
        done = j.replay()
        assert set(done) == {3, 7}
        assert np.allclose(done[7][1].f_gamma, p2.f_gamma)
        assert done[3][0].lmax == p1.lmax

    def test_empty_journal(self, tmp_path):
        assert ModeJournal(tmp_path / "nope.journal").replay() == {}

    def test_torn_write_ignored(self, tmp_path):
        path = tmp_path / "run.journal"
        j = ModeJournal(path)
        h, p = fake_compute(1)
        j.append(h, p)
        with open(path, "a") as fh:
            fh.write("1.0 2.0 | 3.0 4.0")  # truncated tail
        done = j.replay()
        assert set(done) == {1}

    def test_mismatched_pair_rejected(self, tmp_path):
        h, _ = fake_compute(1)
        _, p = fake_compute(2)
        with pytest.raises(Exception):
            ModeJournal(tmp_path / "x.journal").append(h, p)


class TestCheckpointedRuns:
    def test_fresh_run_matches_serial(self, tmp_path, scdm, bg_scdm,
                                      thermo_scdm, small_grid, config):
        result, resumed = run_plinger_checkpointed(
            scdm, small_grid, tmp_path / "run.journal", config,
            nproc=3, background=bg_scdm, thermo=thermo_scdm,
        )
        assert resumed == 0
        serial = run_linger(scdm, small_grid, config, background=bg_scdm,
                            thermo=thermo_scdm)
        assert np.allclose(result.delta_m, serial.delta_m, rtol=1e-12)

    def test_restart_skips_completed(self, tmp_path, scdm, bg_scdm,
                                     thermo_scdm, small_grid, config):
        journal = tmp_path / "run.journal"
        # first run completes everything
        r1, _ = run_plinger_checkpointed(
            scdm, small_grid, journal, config, nproc=3,
            background=bg_scdm, thermo=thermo_scdm,
        )
        # "restart": everything journaled, nothing recomputed
        r2, resumed = run_plinger_checkpointed(
            scdm, small_grid, journal, config, nproc=3,
            background=bg_scdm, thermo=thermo_scdm,
        )
        assert resumed == small_grid.nk
        for a, b in zip(r1.payloads, r2.payloads):
            assert np.allclose(a.f_gamma, b.f_gamma)

    def test_partial_restart(self, tmp_path, scdm, bg_scdm, thermo_scdm,
                             small_grid, config):
        journal_path = tmp_path / "run.journal"
        # simulate an interrupted run: journal only modes 1 and 4 from a
        # complete reference run
        full = run_linger(scdm, small_grid, config, background=bg_scdm,
                          thermo=thermo_scdm)
        j = ModeJournal(journal_path)
        for i in (0, 3):
            j.append(full.headers[i], full.payloads[i])

        result, resumed = run_plinger_checkpointed(
            scdm, small_grid, journal_path, config, nproc=3,
            background=bg_scdm, thermo=thermo_scdm,
        )
        assert resumed == 2
        assert np.allclose(result.delta_m, full.delta_m, rtol=1e-10)
        # ik ordering intact
        assert [h.ik for h in result.headers] == [1, 2, 3, 4, 5]

    def test_foreign_journal_rejected(self, tmp_path, scdm, bg_scdm,
                                      thermo_scdm, config):
        j = ModeJournal(tmp_path / "foreign.journal")
        h, p = fake_compute(99)
        j.append(h, p)
        with pytest.raises(ParameterError):
            run_plinger_checkpointed(
                scdm, KGrid.from_k([0.001, 0.002]),
                tmp_path / "foreign.journal", config, nproc=2,
                background=bg_scdm, thermo=thermo_scdm,
            )


class TestCrashResume:
    """Satellite: a real SIGKILL mid-journal, then a resume *under
    chaos injection* — the recovered run must be bitwise-identical to
    an uninterrupted one (the journal stores %.17e, which round-trips
    float64 exactly, and chaos recovery is bit-preserving)."""

    def test_sigkill_mid_journal_then_chaos_resume(
            self, tmp_path, scdm, bg_scdm, thermo_scdm, small_grid,
            config):
        import os
        import signal
        import time

        from repro.chaos import ChaosPolicy, active
        from repro.resilience import FaultTolerance

        journal_path = tmp_path / "run.journal"

        pid = os.fork()
        if pid == 0:  # child: start the run, die whenever the parent says
            try:
                run_plinger_checkpointed(
                    scdm, small_grid, journal_path, config, nproc=3,
                    background=bg_scdm, thermo=thermo_scdm,
                )
            finally:
                os._exit(0)

        # parent: wait for at least one complete journal line, then
        # SIGKILL the child mid-flight (no atexit, no cleanup)
        deadline = time.time() + 120.0
        while time.time() < deadline:
            if journal_path.exists() and \
                    journal_path.read_text().count("\n") >= 1:
                break
            time.sleep(0.02)
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # the child finished the whole grid first — still fine
        os.waitpid(pid, 0)

        pre = ModeJournal(journal_path).replay()
        assert pre  # the crash left at least one durable mode behind

        # resume under integrator chaos: the forced step collapse must
        # be absorbed by a same-config transient retry, not change bits
        with active(ChaosPolicy.from_profile("integrator", seed=1)):
            result, resumed = run_plinger_checkpointed(
                scdm, small_grid, journal_path, config, nproc=3,
                background=bg_scdm, thermo=thermo_scdm,
                fault_tolerance=FaultTolerance(),
            )
        assert resumed == len(pre)

        reference = run_linger(scdm, small_grid, config,
                               background=bg_scdm, thermo=thermo_scdm)
        assert [h.ik for h in result.headers] == [1, 2, 3, 4, 5]
        for got, ref in zip(result.payloads, reference.payloads):
            np.testing.assert_array_equal(got.pack(), ref.pack())
        assert all(h.retry_level == 0 for h in result.headers)
