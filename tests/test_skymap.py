"""Sky-map machinery: Legendre recurrences, transforms, flat sky, movie."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.skymap import (
    AlmGrid,
    FlatSkyPatch,
    SphereGrid,
    analyze,
    cl_of_alm,
    gaussian_alm,
    legendre_lambda,
    synthesize,
    synthesize_flat,
)


class TestLegendre:
    def test_monopole_constant(self):
        x = np.linspace(-1, 1, 11)
        lam = legendre_lambda(0, 0, x)
        assert np.allclose(lam[0], 1 / math.sqrt(4 * math.pi))

    def test_y10_analytic(self):
        # lambda_10 = sqrt(3/4pi) x
        x = np.linspace(-0.9, 0.9, 7)
        lam = legendre_lambda(1, 0, x)
        assert np.allclose(lam[1], math.sqrt(3 / (4 * math.pi)) * x)

    def test_y11_analytic(self):
        # lambda_11 = -sqrt(3/8pi) sin(theta)
        x = np.array([0.0, 0.5])
        lam = legendre_lambda(1, 1, x)
        expected = -math.sqrt(3 / (8 * math.pi)) * np.sqrt(1 - x**2)
        assert np.allclose(lam[0], expected)

    def test_orthonormality(self):
        """integral lambda_lm lambda_l'm dOmega_theta-part = delta_ll'
        (2 pi from phi already divided out: use GL quadrature and the
        normalization with the 2 pi phi factor)."""
        lmax, m = 12, 3
        x, w = np.polynomial.legendre.leggauss(64)
        lam = legendre_lambda(lmax, m, x)
        gram = 2 * math.pi * (lam * w) @ lam.T
        assert np.allclose(gram, np.eye(lmax - m + 1), atol=1e-10)

    def test_invalid_m_rejected(self):
        with pytest.raises(ParameterError):
            legendre_lambda(5, 6, np.array([0.0]))

    @given(l=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_m0_matches_legendre_polynomial(self, l):
        x = np.linspace(-0.95, 0.95, 9)
        lam = legendre_lambda(l, 0, x)[l]
        p = np.polynomial.legendre.Legendre.basis(l)(x)
        norm = math.sqrt((2 * l + 1) / (4 * math.pi))
        assert np.allclose(lam, norm * p, atol=1e-10)


class TestSphereTransforms:
    def test_round_trip(self):
        rng = np.random.default_rng(7)
        lmax = 24
        cl = 1.0 / (np.arange(lmax + 1) + 1.0) ** 2
        alm = gaussian_alm(cl, lmax, rng)
        grid = SphereGrid.for_lmax(lmax, oversample=1.2)
        alm2 = analyze(synthesize(alm, grid), grid, lmax)
        assert np.allclose(alm2.values, alm.values, atol=1e-12)

    def test_monopole_map(self):
        lmax = 4
        alm = AlmGrid.zeros(lmax)
        alm.values[0, 0] = math.sqrt(4 * math.pi)  # Y00 = 1/sqrt(4pi)
        grid = SphereGrid.for_lmax(lmax)
        m = synthesize(alm, grid)
        assert np.allclose(m, 1.0)

    def test_map_variance_matches_spectrum(self):
        rng = np.random.default_rng(11)
        lmax = 16
        cl = np.ones(lmax + 1) * 1e-4
        cl[0] = cl[1] = 0.0
        alm = gaussian_alm(cl, lmax, rng)
        grid = SphereGrid.for_lmax(lmax, oversample=1.5)
        m = synthesize(alm, grid)
        var_map = float(np.sum(grid.solid_angle_weights * m**2) / (4 * np.pi))
        l = np.arange(lmax + 1)
        var_alm = float(np.sum((2 * l + 1) * cl_of_alm(alm)) / (4 * np.pi))
        assert var_map == pytest.approx(var_alm, rel=1e-10)

    def test_cl_estimator_unbiased(self):
        rng = np.random.default_rng(3)
        lmax = 30
        cl = np.ones(lmax + 1)
        estimates = np.mean(
            [cl_of_alm(gaussian_alm(cl, lmax, rng)) for _ in range(40)],
            axis=0,
        )
        # cosmic variance ~ sqrt(2/(2l+1)N): generous tolerance
        assert np.allclose(estimates[5:], 1.0, atol=0.3)

    def test_nlon_too_small_rejected(self):
        alm = AlmGrid.zeros(10)
        grid = SphereGrid(nlat=12, nlon=8,
                          x=np.polynomial.legendre.leggauss(12)[0],
                          w=np.polynomial.legendre.leggauss(12)[1],
                          phi=2 * np.pi * np.arange(8) / 8)
        with pytest.raises(ParameterError):
            synthesize(alm, grid)

    def test_negative_cl_rejected(self):
        with pytest.raises(ParameterError):
            gaussian_alm(np.array([1.0, -1.0]), 1)

    def test_alm_negative_m_reality(self):
        alm = AlmGrid.zeros(3)
        alm.values[2, 1] = 1.0 + 2.0j
        assert alm[2, -1] == (-1) * np.conj(1.0 + 2.0j)


class TestFlatSky:
    def test_variance_matches_band(self):
        # the band must sit inside the patch's resolved l range:
        # fundamental 2 pi/side ~ 18 to Nyquist pi npix/side ~ 2300
        rng = np.random.default_rng(5)
        l = np.arange(30, 1000)
        cl = np.full(l.size, 1e-10)
        p = synthesize_flat(l, cl, side_deg=20, npix=256, rng=rng)
        target = float(np.sum((2 * l + 1.0) * cl) / (4 * np.pi))
        assert p.values.var() == pytest.approx(target, rel=0.2)

    def test_zero_spectrum_zero_map(self):
        l = np.arange(2, 100)
        p = synthesize_flat(l, np.zeros(l.size), npix=64)
        assert np.allclose(p.values, 0.0)

    def test_pixel_size(self):
        p = FlatSkyPatch(side_deg=16.0, npix=32, values=np.zeros((32, 32)))
        assert p.pixel_deg == 0.5

    def test_reproducible_with_seed(self):
        l = np.arange(2, 500)
        cl = 1e-10 / (l / 100.0) ** 2
        p1 = synthesize_flat(l, cl, rng=np.random.default_rng(1), npix=64)
        p2 = synthesize_flat(l, cl, rng=np.random.default_rng(1), npix=64)
        assert np.array_equal(p1.values, p2.values)

    def test_bad_l_rejected(self):
        with pytest.raises(ParameterError):
            synthesize_flat(np.array([5.0, 3.0]), np.ones(2))


class TestPotentialMovie:
    def test_frames_fixed_phase(self, mode_k005, mode_k05, bg_scdm,
                                thermo_scdm):
        from repro.perturbations import default_record_grid, evolve_mode
        from repro.skymap import PotentialMovie

        k_mid = 0.015
        grid = default_record_grid(bg_scdm, thermo_scdm, k_mid)
        mode_mid = evolve_mode(bg_scdm, thermo_scdm, k_mid,
                               record_tau=grid, rtol=1e-4)
        movie = PotentialMovie([mode_k005, mode_mid, mode_k05],
                               box_mpc=100.0, npix=32)
        lo, hi = movie.tau_range
        taus = np.linspace(max(lo, 20.0), 250.0, 5)
        frames = movie.frames(taus)
        assert frames.shape == (5, 32, 32)
        # same phases: frames are strongly correlated in space
        c = np.corrcoef(frames[0].ravel(), frames[1].ravel())[0, 1]
        assert abs(c) > 0.5

    def test_needs_three_modes(self, mode_k005):
        from repro.skymap import PotentialMovie

        with pytest.raises(ParameterError):
            PotentialMovie([mode_k005])

    def test_tau_outside_range_rejected(self, mode_k005, mode_k05,
                                        mode_mdm):
        from repro.skymap import PotentialMovie

        movie = PotentialMovie([mode_k005, mode_k05, mode_mdm], npix=16)
        with pytest.raises(ParameterError):
            movie.frame(1e9)
