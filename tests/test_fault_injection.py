"""Failure injection: the protocol must fail loudly, never silently.

A dropped, truncated, duplicated or mis-tagged message in a PLINGER run
must surface as a MessagePassingError / ProtocolError / timeout — not
as a quietly wrong spectrum.
"""

import threading

import numpy as np
import pytest

from repro import KGrid
from repro.errors import MessagePassingError, ProtocolError
from repro.mp.backends.faulty import FaultPolicy, FaultyWorld
from repro.mp.backends.inprocess import InProcessWorld
from repro.plinger import Tag, master_subroutine, worker_subroutine
from tests.test_plinger import fake_compute


def run_faulty(policy, nk=4, nproc=2, master_timeout=2.0):
    """Run a PLINGER exchange through a faulty world; returns
    (master_error, worker_errors, world)."""
    inner = InProcessWorld(nproc)
    # cap probe waits so dropped messages become timeouts, not hangs
    orig_find = inner.find
    inner.find = lambda *a, **kw: orig_find(
        *a, **{**kw, "timeout": master_timeout}
    )
    world = FaultyWorld(inner, policy)
    kgrid = KGrid.from_k(0.01 * np.arange(1, nk + 1))
    worker_errors = []

    def worker(rank):
        mp = world.handle(rank)
        mp.initpass()
        try:
            worker_subroutine(mp, lambda ik: fake_compute(ik))
        except (MessagePassingError, ProtocolError) as e:
            worker_errors.append(e)

    threads = [threading.Thread(target=worker, args=(r,), daemon=True)
               for r in range(1, nproc)]
    for t in threads:
        t.start()
    mp0 = world.handle(0)
    mp0.initpass()
    master_error = None
    try:
        master_subroutine(mp0, kgrid)
    except (MessagePassingError, ProtocolError) as e:
        master_error = e
    for t in threads:
        t.join(5.0)
    return master_error, worker_errors, world


class TestFaultPolicy:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(selector=lambda m, c: True, action="scramble")

    def test_no_faults_when_selector_never_fires(self):
        err, werrs, world = run_faulty(
            FaultPolicy(selector=lambda m, c: False, action="drop")
        )
        assert err is None and not werrs
        assert world.faults_injected == 0


class TestDrop:
    def test_dropped_result_times_out_master(self):
        policy = FaultPolicy(
            selector=lambda m, c: m.tag == Tag.HEADER and c > 0,
            action="drop",
        )
        err, _, world = run_faulty(policy, master_timeout=0.5)
        assert world.faults_injected >= 1
        assert err is not None  # master probe timed out


class TestTruncate:
    def test_truncated_header_detected(self):
        policy = FaultPolicy(
            selector=lambda m, c: m.tag == Tag.HEADER,
            action="truncate",
        )
        err, _, world = run_faulty(policy, master_timeout=1.0)
        assert world.faults_injected >= 1
        assert isinstance(err, (MessagePassingError, ProtocolError))


class TestRetag:
    def test_unknown_tag_raises_protocol_error(self):
        policy = FaultPolicy(
            selector=lambda m, c: m.tag == Tag.READY,
            action="retag",
            retag_to=42,
        )
        err, _, world = run_faulty(policy, master_timeout=1.0)
        assert world.faults_injected >= 1
        assert err is not None


class TestDuplicate:
    def test_duplicated_ready_is_harmless_or_detected(self):
        """A duplicated ready-request earns a second reply; the worker
        left with an unconsumed message must not corrupt results —
        either everything completes (extra WORK absorbed as the
        worker's next assignment) or someone raises."""
        policy = FaultPolicy(
            selector=lambda m, c: m.tag == Tag.READY,
            action="duplicate",
        )
        err, werrs, world = run_faulty(policy, nk=4, master_timeout=1.0)
        assert world.faults_injected >= 1
        # the run must terminate within the timeout either way (join
        # succeeded above); silence with missing modes is impossible
        # because the master counts completions before stopping.
