"""Physics invariants of the evolved Einstein-Boltzmann system.

These are the tests that make the reproduction trustworthy: known
analytic limits (superhorizon conservation, the radiation-to-matter
potential drop, tight coupling), internal consistency (TCA switch-time
independence, integrator independence, lmax convergence), and the
gauge identities.
"""

import numpy as np
import pytest

from repro.integrators import RKF45
from repro.perturbations import default_record_grid, evolve_mode
from repro.perturbations.evolve import find_tca_exit, tau_initial


class TestSuperhorizon:
    def test_eta_conserved_early(self, mode_k005):
        """eta is constant while the mode is outside the horizon."""
        r = mode_k005.records
        early = mode_k005.tau < 0.2 / mode_k005.k
        eta = r["eta"][early]
        assert eta.size > 5
        assert np.max(np.abs(eta - eta[0])) < 0.02 * abs(eta[0])

    def test_psi_radiation_value(self, mode_k005, bg_scdm):
        """psi = 20 C / (15 + 4 R_nu) deep in the radiation era."""
        from repro.perturbations.initial import neutrino_fraction

        rnu = neutrino_fraction(bg_scdm)
        expected = 20.0 / (15.0 + 4.0 * rnu)
        assert mode_k005.records["psi"][0] == pytest.approx(expected,
                                                            rel=0.02)

    def test_potential_drop_through_equality(self, bg_scdm, thermo_scdm):
        """Conserved-curvature bookkeeping through equality.

        The textbook 9/10 drop of the potential generalizes, with
        neutrino anisotropic stress, to

            phi_MD / phi_RD = (9/10 + 6 R_nu / 25) / (1 + 2 R_nu / 5),
            phi_RD = psi_RD (1 + 2 R_nu / 5),

        for a mode still outside the horizon in the matter era.
        """
        from repro.perturbations.initial import neutrino_fraction

        k = 1e-4  # far outside the horizon until very late times
        grid = default_record_grid(bg_scdm, thermo_scdm, k)
        mode = evolve_mode(bg_scdm, thermo_scdm, k, record_tau=grid,
                           rtol=1e-5)
        r = mode.records
        rnu = neutrino_fraction(bg_scdm)
        # RD relation between the two potentials
        assert r["phi"][0] == pytest.approx(
            r["psi"][0] * (1 + 0.4 * rnu), rel=0.005
        )
        sel = (r["a"] > 0.01) & (r["a"] < 0.05)
        assert np.count_nonzero(sel) > 3
        ratio = np.mean(r["phi"][sel]) / r["phi"][0]
        expected = (0.9 + 6 * rnu / 25) / (1 + 0.4 * rnu)
        assert ratio == pytest.approx(expected, rel=0.015)

    def test_adiabatic_relation_persists_early(self, mode_k005):
        r = mode_k005.records
        early = mode_k005.tau < 0.1 / mode_k005.k
        assert np.allclose(r["delta_c"][early],
                           0.75 * r["delta_g"][early], rtol=0.05)


class TestTightCoupling:
    def test_baryons_locked_to_photons_before_rec(self, mode_k05,
                                                  thermo_scdm):
        r = mode_k05.records
        before = mode_k05.tau < 0.7 * thermo_scdm.tau_rec
        tb, tg = r["theta_b"][before], r["theta_g"][before]
        scale = np.max(np.abs(tg))
        assert np.max(np.abs(tb - tg)) < 0.02 * scale

    def test_acoustic_oscillations(self, mode_k05, thermo_scdm):
        """delta_g for k = 0.05 undergoes acoustic oscillations: several
        sign changes over the recorded history (k r_s(rec) ~ 2 pi, plus
        free-streaming oscillations afterwards)."""
        r = mode_k05.records
        signs = np.sign(r["delta_g"])
        flips = np.count_nonzero(np.diff(signs) != 0)
        assert flips >= 3
        # and at least one sign change happens before last scattering
        pre = signs[mode_k05.tau < thermo_scdm.tau_rec]
        assert np.count_nonzero(np.diff(pre) != 0) >= 1

    def test_switch_time_independence(self, bg_scdm, thermo_scdm):
        """Leaving tight coupling earlier or later must not change the
        answer (first-order TCA accuracy)."""
        k = 0.05
        m1 = evolve_mode(bg_scdm, thermo_scdm, k, rtol=1e-6, tca_eps=0.01)
        m2 = evolve_mode(bg_scdm, thermo_scdm, k, rtol=1e-6, tca_eps=0.004)
        assert m1.tau_switch != m2.tau_switch
        d1 = m1.y_final[m1.layout.DELTA_C]
        d2 = m2.y_final[m2.layout.DELTA_C]
        assert d1 == pytest.approx(d2, rel=2e-3)

    def test_tca_exit_before_visibility_peak(self, bg_scdm, thermo_scdm):
        for k in (0.001, 0.05, 0.3):
            t_exit = find_tca_exit(bg_scdm, thermo_scdm, k)
            assert t_exit < thermo_scdm.tau_rec

    def test_tca_exit_earlier_for_larger_k(self, bg_scdm, thermo_scdm):
        assert find_tca_exit(bg_scdm, thermo_scdm, 0.3) < find_tca_exit(
            bg_scdm, thermo_scdm, 0.003
        )


class TestNumericalRobustness:
    def test_tolerance_convergence(self, bg_scdm, thermo_scdm):
        m1 = evolve_mode(bg_scdm, thermo_scdm, 0.02, rtol=1e-4)
        m2 = evolve_mode(bg_scdm, thermo_scdm, 0.02, rtol=1e-6)
        d1 = m1.y_final[m1.layout.DELTA_C]
        d2 = m2.y_final[m2.layout.DELTA_C]
        assert d1 == pytest.approx(d2, rel=1e-3)

    def test_integrator_independence(self, bg_scdm, thermo_scdm):
        """DVERK and RKF45 must agree — the physics does not depend on
        the integrator (the paper's accuracy rests on the equations)."""
        m1 = evolve_mode(bg_scdm, thermo_scdm, 0.02, rtol=1e-6)
        m2 = evolve_mode(bg_scdm, thermo_scdm, 0.02, rtol=1e-6,
                         driver_cls=RKF45)
        assert m1.y_final[m1.layout.DELTA_C] == pytest.approx(
            m2.y_final[m2.layout.DELTA_C], rel=1e-3
        )

    def test_lmax_convergence_of_sources(self, bg_scdm, thermo_scdm):
        grid = default_record_grid(bg_scdm, thermo_scdm, 0.05)
        m1 = evolve_mode(bg_scdm, thermo_scdm, 0.05, lmax_photon=10,
                         record_tau=grid, rtol=1e-5)
        m2 = evolve_mode(bg_scdm, thermo_scdm, 0.05, lmax_photon=18,
                         record_tau=grid, rtol=1e-5)
        i_rec = np.argmin(np.abs(m1.tau - 235.0))
        assert m1.records["delta_g"][i_rec] == pytest.approx(
            m2.records["delta_g"][i_rec], rel=0.03
        )

    def test_amplitude_linearity(self, bg_scdm, thermo_scdm):
        m1 = evolve_mode(bg_scdm, thermo_scdm, 0.03, rtol=1e-5,
                         amplitude=1.0)
        m2 = evolve_mode(bg_scdm, thermo_scdm, 0.03, rtol=1e-5,
                         amplitude=3.0)
        f1 = m1.f_gamma_final
        f2 = m2.f_gamma_final
        assert np.allclose(f2, 3.0 * f1, rtol=1e-3, atol=1e-10)


class TestGrowthAndGauge:
    def test_cdm_grows_linearly_in_matter_era(self, mode_k05):
        """Inside the horizon, delta_c grows like a in the matter era."""
        r = mode_k05.records
        sel = (r["a"] > 0.02) & (r["a"] < 0.2)
        ratio = np.abs(r["delta_c"][sel]) / r["a"][sel]
        assert np.std(ratio) / np.mean(ratio) < 0.05

    def test_phi_equals_psi_when_shear_negligible(self, mode_k05):
        """In the matter era the anisotropic stress is tiny, so the two
        Newtonian potentials coincide."""
        r = mode_k05.records
        sel = r["a"] > 0.1
        assert np.allclose(r["phi"][sel], r["psi"][sel], rtol=0.02)

    def test_potential_decays_inside_horizon_rad_era(self, bg_scdm,
                                                     thermo_scdm):
        """A small-scale mode's potential decays after horizon entry in
        the radiation era (Meszaros suppression)."""
        k = 0.2
        grid = default_record_grid(bg_scdm, thermo_scdm, k)
        mode = evolve_mode(bg_scdm, thermo_scdm, k, record_tau=grid,
                           rtol=1e-4)
        r = mode.records
        late = np.abs(r["psi"][-1])
        assert late < 0.3 * abs(r["psi"][0])

    def test_delta_m_matches_components(self, mode_k05, scdm):
        r = mode_k05.records
        expected = (
            scdm.omega_c * r["delta_c"] + scdm.omega_b * r["delta_b"]
        ) / scdm.omega_m
        assert np.allclose(r["delta_m"], expected, rtol=1e-12)


class TestPhotonSector:
    def test_photons_free_stream_after_rec(self, mode_k05, thermo_scdm):
        """After last scattering the monopole stops growing: delta_g
        today is O(initial), not O(delta_c)."""
        r = mode_k05.records
        assert abs(r["delta_g"][-1]) < 0.05 * abs(r["delta_c"][-1])

    def test_polarization_generated_at_recombination(self, mode_k05,
                                                     thermo_scdm):
        """Pi = F2 + G0 + G2 peaks around recombination and is tiny
        before (tight coupling suppresses the quadrupole)."""
        r = mode_k05.records
        tau = mode_k05.tau
        pi_peak = np.max(np.abs(r["pi"]))
        i_peak = np.argmax(np.abs(r["pi"]))
        assert 0.5 * thermo_scdm.tau_rec < tau[i_peak] < 3 * thermo_scdm.tau_rec
        early = tau < 0.3 * thermo_scdm.tau_rec
        assert np.max(np.abs(r["pi"][early])) < 0.1 * pi_peak

    def test_final_multipoles_finite_and_bounded(self, mode_k05):
        th = mode_k05.theta_l_final
        assert np.all(np.isfinite(th))
        # l = 1 is gauge-dependent in synchronous gauge (the dipole grows
        # as -(2/3) hdot / k to keep the monopole bounded); the physical
        # multipoles l >= 2 stay O(1) or smaller.
        assert np.max(np.abs(th[2:])) < 1.0
        assert abs(th[0]) < 1.0


class TestMassiveNeutrinos:
    def test_massive_nu_adiabatic_early(self, mode_mdm):
        r = mode_mdm.records
        early = mode_mdm.tau < 0.1 / mode_mdm.k
        assert np.allclose(r["delta_nu_massive"][early],
                           r["delta_g"][early], rtol=0.05)

    def test_free_streaming_suppression(self, mode_mdm, mode_k05):
        """MDM: neutrinos cluster less than CDM at k = 0.05/Mpc."""
        r = mode_mdm.records
        assert abs(r["delta_nu_massive"][-1]) < abs(r["delta_c"][-1])

    def test_mdm_slows_cdm_growth(self, mode_mdm, mode_k05):
        """The MDM model's delta_c today is below standard CDM's at the
        same k (the neutrino free-streaming drag on growth)."""
        d_mdm = abs(mode_mdm.records["delta_c"][-1])
        d_cdm = abs(mode_k05.records["delta_c"][-1])
        assert d_mdm < d_cdm

    def test_delta_m_includes_neutrinos(self, mode_mdm, mdm):
        r = mode_mdm.records
        expected = (
            mdm.omega_c * r["delta_c"][-1]
            + mdm.omega_b * r["delta_b"][-1]
            + mdm.omega_nu * r["delta_nu_massive"][-1]
        ) / mdm.omega_m
        assert r["delta_m"][-1] == pytest.approx(expected, rel=1e-10)


class TestDriverMechanics:
    def test_records_cover_grid(self, mode_k05):
        assert mode_k05.tau.size > 200
        assert np.all(np.isfinite(mode_k05.tau))
        for name, arr in mode_k05.records.items():
            if name == "delta_nu_massive":
                continue  # NaN by design for massless runs
            assert np.all(np.isfinite(arr)), name

    def test_tau_initial_rule(self):
        assert tau_initial(0.03) == pytest.approx(1.0)
        assert tau_initial(1e-5) == pytest.approx(1.5)

    def test_scale_factor_reaches_one(self, mode_k05):
        assert mode_k05.records["a"][-1] == pytest.approx(1.0, rel=1e-4)

    def test_stats_populated(self, mode_k05):
        assert mode_k05.stats.n_steps > 100
        assert mode_k05.stats.n_rhs > 8 * mode_k05.stats.n_steps * 0.5
