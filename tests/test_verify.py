"""The Einstein-constraint verification subsystem.

Covers all four layers of repro.verify:

* the tolerance-budget registry (structure, lookup, semantics);
* the runtime constraint monitors (residuals within budget on a real
  mode, purity — monitoring must not perturb the trajectory —, the
  curvature-closure and tight-coupling handling, telemetry plumbing);
* the differential and analytic oracles on the session fixtures;
* the runner/report machinery (check bookkeeping, JSON round-trip,
  failure raising).

The expensive full-suite run (``repro verify``) lives in CI, not here;
these tests exercise every component on the cheap shared fixtures.
"""

import json

import numpy as np
import pytest

from repro import ParameterError, VerificationError
from repro.perturbations import default_record_grid, evolve_mode
from repro.telemetry import ConstraintMetrics, RunReport, Telemetry
from repro.verify import (
    TOLERANCES,
    ConstraintMonitor,
    Tolerance,
    budget,
    quality_residuals,
)
from repro.verify.runner import VerificationCheck, VerificationReport

# -- tolerance registry ------------------------------------------------------


class TestToleranceRegistry:
    def test_every_entry_has_provenance(self):
        for key, tol in TOLERANCES.items():
            assert tol.key == key
            assert len(tol.provenance) > 20, f"{key} lacks provenance"
            assert tol.rtol > 0 or tol.atol > 0, f"{key} has no budget"

    def test_budget_lookup(self):
        tol = budget("constraint.pressure_evolution")
        assert tol.atol == 1e-8

    def test_unknown_key_raises(self):
        with pytest.raises(ParameterError, match="unknown tolerance-budget"):
            budget("constraint.no_such_check")

    def test_admits(self):
        tol = Tolerance("t", atol=1e-6)
        assert tol.admits(5e-7)
        assert tol.admits(-5e-7)
        assert not tol.admits(2e-6)
        assert not tol.admits(float("nan"))

    def test_allclose_and_deviation(self):
        tol = Tolerance("t", rtol=1e-3, atol=1e-12)
        assert tol.allclose([1.0, 2.0], [1.0005, 2.0])
        assert not tol.allclose([1.0], [1.01])
        assert tol.max_rel_deviation([1.001], [1.0]) == pytest.approx(1e-3)


# -- constraint monitors -----------------------------------------------------


@pytest.fixture(scope="module")
def monitored_k005(bg_scdm, thermo_scdm):
    """mode_k005 re-integrated with a monitor attached."""
    k = 0.005
    grid = default_record_grid(bg_scdm, thermo_scdm, k)
    mon = ConstraintMonitor(tau_rec=thermo_scdm.tau_rec)
    mode = evolve_mode(bg_scdm, thermo_scdm, k, record_tau=grid, rtol=1e-5,
                       monitor=mon)
    return mode, mon.residuals()


class TestConstraintMonitor:
    def test_residuals_within_budget(self, monitored_k005):
        _, res = monitored_k005
        assert budget("constraint.pressure_evolution").admits(res.max_pressure)
        assert budget("constraint.shear_evolution").admits(res.max_shear)
        assert budget("constraint.thomson_exchange").admits(res.max_exchange)
        assert budget("constraint.truncation_photon").admits(
            res.max_truncation_photon)
        assert budget("constraint.truncation_polarization").admits(
            res.max_truncation_polarization)

    def test_tca_samples_are_nan(self, monitored_k005):
        mode, res = monitored_k005
        tca = res.tau <= mode.tau_switch
        assert np.any(tca)
        assert np.all(np.isnan(res.pressure[tca]))
        # truncation indicators are defined in both phases
        assert not np.any(np.isnan(res.trunc_photon))

    def test_monitor_is_pure(self, mode_k005, monitored_k005):
        """Attaching a monitor must not perturb the trajectory: the
        monitored re-integration matches the unmonitored session
        fixture bitwise."""
        mode, _ = monitored_k005
        assert np.array_equal(mode.records["delta_g"],
                              mode_k005.records["delta_g"])
        assert np.array_equal(mode.y_final, mode_k005.y_final)

    def test_sample_count_matches_record_grid(self, monitored_k005):
        mode, res = monitored_k005
        assert res.n_samples == mode.tau.size
        assert np.array_equal(res.tau, mode.tau)

    def test_unbound_monitor_raises(self):
        mon = ConstraintMonitor(tau_rec=100.0)
        with pytest.raises(ParameterError):
            mon(1.0, np.zeros(4), tight=False)

    def test_quality_residuals(self, mode_k005, thermo_scdm):
        res = quality_residuals(mode_k005, thermo_scdm.tau_rec)
        assert budget("quality.eta_consistency").admits(res["eta"])
        assert budget("quality.alpha_consistency").admits(res["alpha"])

    def test_empty_monitor_summaries_are_none(self):
        mon = ConstraintMonitor(tau_rec=100.0)
        res = mon.residuals()
        assert res.n_samples == 0
        assert res.max_pressure is None
        assert res.max_truncation_photon is None


class TestConstraintMetricsSerialization:
    def test_to_metrics_decimates(self, monitored_k005):
        _, res = monitored_k005
        m = res.to_metrics(ik=3, history_cap=16)
        assert m.ik == 3
        assert m.n_samples == res.n_samples
        assert len(m.tau_history) <= 16
        # decimation never hides the exact maxima
        assert m.max_pressure_residual == res.max_pressure
        assert m.max_shear_residual == res.max_shear

    def test_nan_becomes_none_in_histories(self, monitored_k005):
        _, res = monitored_k005
        m = res.to_metrics(history_cap=1000)
        assert None in m.pressure_history  # the TCA samples
        assert all(v is None or isinstance(v, float)
                   for v in m.pressure_history)

    def test_report_roundtrip(self, monitored_k005):
        _, res = monitored_k005
        tel = Telemetry()
        tel.record_constraint(res.to_metrics(ik=1))
        report = tel.build_report()
        assert report.totals["constraints_monitored_modes"] == 1
        assert report.totals["max_pressure_residual"] == res.max_pressure
        blob = json.dumps(report.to_dict())
        again = RunReport.from_dict(json.loads(blob))
        assert len(again.constraints) == 1
        m = again.constraints[0]
        assert isinstance(m, ConstraintMetrics)
        assert m.k == res.k
        assert m.max_pressure_residual == res.max_pressure
        assert m.pressure_history == report.constraints[0].pressure_history


class TestRunLingerIntegration:
    def test_monitor_constraints_requires_records(self, scdm):
        from repro import KGrid, LingerConfig, run_linger

        with pytest.raises(ParameterError, match="record_sources"):
            run_linger(scdm, KGrid.from_k([0.01]),
                       LingerConfig(record_sources=False,
                                    keep_mode_results=False),
                       monitor_constraints=True)

    def test_serial_and_batched_monitors_agree(self, scdm, bg_scdm,
                                               thermo_scdm):
        from repro import KGrid, LingerConfig, run_linger

        kg = KGrid.from_k([0.002, 0.01])
        cfg = LingerConfig(lmax_photon=12, lmax_nu=8, rtol=1e-4)
        serial = run_linger(scdm, kg, cfg, background=bg_scdm,
                            thermo=thermo_scdm, monitor_constraints=True)
        batched = run_linger(scdm, kg, cfg, background=bg_scdm,
                             thermo=thermo_scdm, monitor_constraints=True,
                             batch_size=2)
        assert len(serial.constraints) == 2
        # the batched engine reorders float ops, so lane states differ
        # from serial at the last few bits; the residuals (themselves
        # ~1e-10 cancellation noise) agree to well below budget
        atol = budget("constraint.pressure_evolution").atol
        for rs, rb in zip(serial.constraints, batched.constraints):
            assert rs.k == rb.k
            assert np.allclose(rs.pressure, rb.pressure, rtol=0.0,
                               atol=0.01 * atol, equal_nan=True)
            assert np.allclose(rs.shear, rb.shear, rtol=0.0,
                               atol=0.01 * atol, equal_nan=True)


# -- analytic oracles --------------------------------------------------------


class TestAnalyticOracles:
    def test_superhorizon_and_adiabatic(self, linger_small):
        from repro.verify import (
            adiabatic_ratio_deviation,
            superhorizon_eta_drift,
        )

        lo = linger_small.modes[0]
        assert budget("analytic.superhorizon_eta").admits(
            superhorizon_eta_drift(lo))
        assert budget("analytic.adiabatic_ratios").admits(
            adiabatic_ratio_deviation(lo))

    def test_matter_growth(self, linger_small):
        from repro.verify import matter_growth_slope

        hi = linger_small.modes[-1]
        assert budget("analytic.matter_growth").admits(
            matter_growth_slope(hi) - 1.0)

    def test_sachs_wolfe(self, linger_small, thermo_scdm):
        from repro.verify import sachs_wolfe_ratio

        lo = linger_small.modes[0]
        ratio = sachs_wolfe_ratio(lo, linger_small.background,
                                  thermo_scdm.tau_rec)
        assert budget("analytic.sachs_wolfe").admits(ratio - 1.0)

    def test_superhorizon_needs_low_k(self):
        from types import SimpleNamespace

        from repro.verify import superhorizon_eta_drift

        # a mode whose record window never has k tau < 0.3
        fake = SimpleNamespace(k=1.0, tau=np.linspace(10.0, 100.0, 50),
                               records={"eta": np.ones(50)})
        with pytest.raises(ParameterError, match="super-horizon"):
            superhorizon_eta_drift(fake)


# -- differential oracles ----------------------------------------------------


class TestPathsOracle:
    def test_batched_path_agrees(self, scdm, bg_scdm, thermo_scdm):
        from repro import KGrid, LingerConfig
        from repro.verify import paths_oracle

        # the golden settings: the 1e-8 budget is calibrated here (an
        # under-resolved hierarchy amplifies the batched engine's
        # last-bit float reordering far above its calibration)
        kg = KGrid.from_k(np.geomspace(3e-4, 0.03, 8))
        cfg = LingerConfig(lmax_photon=24, lmax_nu=12, rtol=1e-4,
                           record_sources=False, keep_mode_results=False)
        devs = paths_oracle(scdm, kg, cfg, background=bg_scdm,
                            thermo=thermo_scdm, batch_size=4,
                            include_plinger=False)
        assert devs["paths_batched"] <= budget("oracle.paths_batched").rtol

    def test_rejects_kept_mode_results(self, scdm):
        from repro import KGrid, LingerConfig
        from repro.verify import paths_oracle

        with pytest.raises(ParameterError, match="keep_mode_results"):
            paths_oracle(scdm, KGrid.from_k([0.01]),
                         LingerConfig(keep_mode_results=True))


class TestSparseClOracle:
    def test_within_budget_on_golden_grid(self, linger_small):
        from repro.verify import sparse_cl_oracle

        devs = sparse_cl_oracle(linger_small, factor=2)
        measured = devs["sparse_cl"]
        assert 0.0 < measured <= budget("oracle.sparse_cl").rtol
        check = VerificationCheck.relative("oracle.sparse_cl",
                                           "dense vs sparse-k C_l (LOS)",
                                           measured)
        assert check.passed
        VerificationReport(model="scdm", fast=True,
                           checks=[check]).raise_on_failure()  # no-op

    def test_breach_raises(self, linger_small):
        """Factor 4 leaves 3 nodes across two decades of the log-spaced
        verify grid — the spline error blows past the budget, and the
        report machinery must turn that into a VerificationError."""
        from repro.verify import sparse_cl_oracle

        devs = sparse_cl_oracle(linger_small, factor=4)
        check = VerificationCheck.relative("oracle.sparse_cl",
                                           "dense vs sparse-k C_l (LOS)",
                                           devs["sparse_cl"])
        assert not check.passed
        rep = VerificationReport(model="scdm", fast=True, checks=[check])
        with pytest.raises(VerificationError, match="sparse"):
            rep.raise_on_failure()


# -- runner / report ---------------------------------------------------------


class TestVerificationReport:
    def _checks(self):
        return [
            VerificationCheck.residual("constraint.pressure_evolution",
                                       "pressure", 1e-10),
            VerificationCheck.relative("oracle.paths_batched",
                                       "paths", 1e-9),
        ]

    def test_passing_report(self):
        rep = VerificationReport(model="scdm", fast=True,
                                 checks=self._checks())
        assert rep.passed
        assert rep.failures == []
        rep.raise_on_failure()  # no-op
        assert "PASSED" in rep.format_table()

    def test_failing_report_raises(self):
        checks = self._checks()
        checks.append(VerificationCheck.residual(
            "constraint.shear_evolution", "shear", 1.0))
        rep = VerificationReport(model="scdm", fast=True, checks=checks)
        assert not rep.passed
        assert len(rep.failures) == 1
        with pytest.raises(VerificationError, match="shear"):
            rep.raise_on_failure()

    def test_nan_measurement_fails(self):
        c = VerificationCheck.residual("constraint.shear_evolution",
                                       "shear", float("nan"))
        assert not c.passed

    def test_json_roundtrip(self, tmp_path):
        rep = VerificationReport(model="scdm", fast=False,
                                 checks=self._checks(), wall_seconds=1.5)
        path = tmp_path / "report.json"
        rep.save(path)
        blob = json.loads(path.read_text())
        assert blob["passed"] is True
        assert blob["model"] == "scdm"
        assert len(blob["checks"]) == 2
        assert blob["checks"][0]["key"] == "constraint.pressure_evolution"
        assert blob["checks"][0]["threshold"] == 1e-8

    def test_thresholds_come_from_registry(self):
        c = VerificationCheck.residual("constraint.thomson_exchange",
                                       "exch", 0.0)
        assert c.threshold == budget("constraint.thomson_exchange").atol
        c = VerificationCheck.relative("oracle.paths_plinger", "p", 0.0)
        assert c.threshold == budget("oracle.paths_plinger").rtol


class TestVerifyCli:
    def test_verify_subcommand_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["verify", "--fast", "--report", "out.json"])
        assert args.command == "verify"
        assert args.fast is True
        assert args.report == "out.json"
