"""The precompute cache: keys, store integrity, shared memory, and
end-to-end bit-compatibility of cached runs.

The cache's contract is strict: a warm start must be *bitwise*
indistinguishable from a cold one (only primitive solver output is
persisted; every spline is re-derived by the same code), corrupt
entries must be detected and healed, and a shared-memory attach must
read the very same bytes the master published.

Point ``REPRO_CACHE_DIR`` at a directory to run this file against a
persistent cache (the CI warm-start job runs the suite twice against
one directory; the second pass exercises every load path).
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro import Background, KGrid, LingerConfig, ThermalHistory, run_linger
from repro.cache import (
    CACHE_VERSION,
    AttachedTables,
    PrecomputeCache,
    SharedTableBlock,
    TableStore,
    cache_key,
    manifest_from_reals,
    manifest_to_reals,
)
from repro.errors import CacheError, CorruptCacheEntry, ParameterError
from repro.plinger.driver import run_plinger
from repro.spectra.cl import cl_from_hierarchy, los_l_grid
from repro.spectra.los import BesselCache
from repro.telemetry import Telemetry
from repro.telemetry.report import CacheMetrics, RunReport
from tests.test_golden_regression import (
    GOLDEN_CL,
    GOLDEN_CONFIG,
    GOLDEN_KGRID,
    GOLDEN_TK,
    RTOL,
    TK_FIELDS,
)


@pytest.fixture()
def cache_dir(tmp_path_factory):
    """A cache root: $REPRO_CACHE_DIR when set (CI warm job), else a
    fresh temporary directory."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return str(tmp_path_factory.mktemp("cache"))


@pytest.fixture()
def fresh_dir(tmp_path):
    """Always-cold cache root, for tests that need a guaranteed miss."""
    return str(tmp_path / "cold-cache")


# -- content-addressed keys --------------------------------------------------


class TestCacheKeys:
    def test_deterministic(self, scdm):
        shape = {"a_min": 1e-10, "n_grid": 4000}
        assert cache_key("background", scdm, shape) == \
            cache_key("background", scdm, shape)

    def test_is_hex_sha256(self, scdm):
        key = cache_key("background", scdm)
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_param_sensitivity(self, scdm):
        from dataclasses import replace

        other = replace(scdm, h=scdm.h * (1 + 1e-15))
        assert cache_key("background", scdm) != cache_key("background", other)

    def test_shape_and_kind_sensitivity(self, scdm):
        base = cache_key("background", scdm, {"n_grid": 4000})
        assert base != cache_key("background", scdm, {"n_grid": 4001})
        assert base != cache_key("thermal", scdm, {"n_grid": 4000})

    def test_version_in_blob(self, scdm):
        from repro.cache import canonical_blob

        blob = json.loads(canonical_blob("background", scdm, None))
        assert blob["version"] == CACHE_VERSION
        assert blob["kind"] == "background"
        assert blob["params"]["__type__"] == "CosmologyParams"


# -- the on-disk store -------------------------------------------------------


class TestTableStore:
    ARRAYS = {
        "grid": np.linspace(0.0, 1.0, 17),
        "matrix": np.arange(12, dtype=float).reshape(3, 4),
        "scalar": np.float64(3.25),
        "ints": np.array([3, 1, 4], dtype=np.int64),
    }

    def test_roundtrip(self, tmp_path):
        store = TableStore(tmp_path)
        key = "ab" + "0" * 62
        nbytes = store.save(key, self.ARRAYS, meta={"kind": "test"})
        assert nbytes > 0 and key in store
        arrays, meta, read = store.load(key)
        assert meta["kind"] == "test" and read == nbytes
        for name, arr in self.ARRAYS.items():
            assert np.array_equal(arrays[name], arr)
            assert arrays[name].shape == np.asarray(arr).shape
        assert float(arrays["scalar"]) == 3.25  # 0-d survives the trip

    def test_missing_is_none(self, tmp_path):
        assert TableStore(tmp_path).load("ff" + "0" * 62) is None

    def test_reserved_names_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TableStore(tmp_path).save("aa" + "0" * 62,
                                      {"__digest__": np.zeros(3)})

    def test_truncation_detected_and_healed(self, tmp_path):
        store = TableStore(tmp_path)
        key = "cd" + "0" * 62
        store.save(key, self.ARRAYS)
        path = store.path(key)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CorruptCacheEntry):
            store.load(key)
        assert key not in store  # deleted: next save rebuilds cleanly

    def test_bitflip_detected_by_digest(self, tmp_path):
        store = TableStore(tmp_path)
        key = "ef" + "0" * 62
        store.save(key, {"v": np.ones(64)})
        path = store.path(key)
        raw = bytearray(path.read_bytes())
        # flip one bit inside the zip's stored array payload; if the
        # flip lands on zip metadata instead, the parse error is an
        # equally valid corruption signal
        raw[len(raw) // 2] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptCacheEntry):
            store.load(key)
        assert key not in store

    def test_concurrent_writers_atomic(self, tmp_path):
        """Racing writers of one key never produce a torn entry."""
        store = TableStore(tmp_path)
        key = "12" + "0" * 62
        errors = []

        def write(seed):
            try:
                arrays = {"v": np.full(4096, float(seed))}
                for _ in range(10):
                    store.save(key, arrays)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(s,))
                   for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        arrays, _, _ = store.load(key)  # digest passes: a complete file won
        assert float(arrays["v"][0]) in {float(s) for s in range(6)}
        assert np.all(arrays["v"] == arrays["v"][0])

    def test_keys_listing(self, tmp_path):
        store = TableStore(tmp_path)
        ks = ["aa" + "0" * 62, "bb" + "1" * 62]
        for k in ks:
            store.save(k, {"v": np.zeros(2)})
        assert store.keys() == sorted(ks)


# -- build-or-load bit-compatibility ----------------------------------------


class TestPrecomputeRoundtrip:
    def _assert_background_equal(self, a: Background, b: Background):
        grid = np.geomspace(1e-8, 1.0, 200)
        assert np.array_equal(a.conformal_time(grid), b.conformal_time(grid))
        assert np.array_equal(a.grho(grid), b.grho(grid))
        assert a.tau0 == b.tau0

    def _assert_thermal_equal(self, a: ThermalHistory, b: ThermalHistory):
        tau = np.linspace(a.tau_rec * 0.3, a.background.tau0 * 0.95, 300)
        scale = np.geomspace(1e-6, 1.0, 200)
        assert np.array_equal(a.x_e(scale), b.x_e(scale))
        assert np.array_equal(a.visibility(tau), b.visibility(tau))
        assert np.array_equal(a.visibility_prime(tau), b.visibility_prime(tau))
        assert np.array_equal(a.exp_minus_kappa(tau), b.exp_minus_kappa(tau))
        assert a.tau_rec == b.tau_rec and a.z_rec == b.z_rec

    def test_scdm_warm_is_bitwise(self, scdm, cache_dir):
        c1 = PrecomputeCache(cache_dir)
        bg1 = c1.background(scdm)
        th1 = c1.thermal(bg1)
        c2 = PrecomputeCache(cache_dir)
        bg2 = c2.background(scdm)
        th2 = c2.thermal(bg2)
        assert c2.metrics.hits == 2 and c2.metrics.misses == 0
        self._assert_background_equal(bg1, bg2)
        self._assert_thermal_equal(th1, th2)

    def test_mdm_warm_is_bitwise(self, mdm, cache_dir):
        c1 = PrecomputeCache(cache_dir)
        bg1 = c1.background(mdm)
        c2 = PrecomputeCache(cache_dir)
        bg2 = c2.background(mdm)
        self._assert_background_equal(bg1, bg2)
        grid = np.geomspace(1e-6, 1.0, 150)
        assert np.array_equal(bg1.nu_tables.rho_factor(grid),
                              bg2.nu_tables.rho_factor(grid))
        assert np.array_equal(bg1.nu_tables.pressure_factor(grid),
                              bg2.nu_tables.pressure_factor(grid))

    def test_bessel_warm_is_bitwise(self, cache_dir):
        ls = los_l_grid(200, n=12)
        c1 = PrecomputeCache(cache_dir)
        b1 = c1.bessel(ls, x_max=300.0)
        c2 = PrecomputeCache(cache_dir)
        b2 = c2.bessel(ls, x_max=300.0)
        x = np.linspace(0.0, 310.0, 1000)
        assert np.array_equal(b1.eval_many(ls, x), b2.eval_many(ls, x))

    def test_corrupt_entry_rebuilt(self, scdm, fresh_dir):
        c1 = PrecomputeCache(fresh_dir)
        bg1 = c1.background(scdm)
        key = c1.store.keys()[0]
        path = c1.store.path(key)
        path.write_bytes(path.read_bytes()[:50])
        c2 = PrecomputeCache(fresh_dir)
        bg2 = c2.background(scdm)
        assert c2.metrics.corrupt_entries == 1
        assert c2.metrics.misses == 1  # healed by rebuilding
        self._assert_background_equal(bg1, bg2)
        c3 = PrecomputeCache(fresh_dir)
        c3.background(scdm)
        assert c3.metrics.hits == 1  # the rebuild re-landed on disk

    def test_thermal_key_independent_of_background_grid(self, scdm,
                                                        fresh_dir):
        c = PrecomputeCache(fresh_dir)
        th1 = c.thermal(c.background(scdm))
        coarse = Background(scdm, n_grid=2000)
        c.thermal(coarse)  # different bg resolution, same ionization solve
        assert c.metrics.by_kind["thermal"]["hits"] == 1
        assert th1 is not None


# -- shared-memory distribution ---------------------------------------------


class TestSharedTableBlock:
    ARRAYS = {
        "a/grid": np.linspace(0.0, 2.0, 301),
        "a/scalar": np.float64(1.5),
        "b/jl": np.sin(np.arange(40, dtype=float)).reshape(4, 10),
    }

    @pytest.mark.parametrize("backend", ["shm", "memmap"])
    def test_attach_is_bit_identical(self, backend):
        block = SharedTableBlock.create(self.ARRAYS, backend=backend)
        try:
            assert block.backend == backend
            manifest = manifest_from_reals(manifest_to_reals(block.manifest))
            att = SharedTableBlock.attach(manifest)
            for name, arr in self.ARRAYS.items():
                assert np.array_equal(att.arrays[name], np.asarray(arr))
                assert att.arrays[name].dtype == np.asarray(arr).dtype
            att.close()
        finally:
            block.close()
            block.unlink()

    def test_attached_views_read_only(self):
        block = SharedTableBlock.create(self.ARRAYS)
        try:
            att = SharedTableBlock.attach(block.manifest)
            with pytest.raises((ValueError, TypeError)):
                att.arrays["a/grid"][0] = 99.0
            att.close()
        finally:
            block.close()
            block.unlink()

    def test_alignment(self):
        block = SharedTableBlock.create(self.ARRAYS)
        try:
            for spec in block.manifest["arrays"].values():
                assert spec["offset"] % 64 == 0
        finally:
            block.close()
            block.unlink()

    def test_bad_schema_rejected(self):
        with pytest.raises(CacheError):
            SharedTableBlock.attach({"schema": "bogus/v0"})

    def test_gone_segment_reported(self):
        block = SharedTableBlock.create({"v": np.zeros(8)})
        manifest = dict(block.manifest)
        block.close()
        block.unlink()
        if manifest["backend"] != "shm":  # pragma: no cover
            pytest.skip("platform fell back to memmap")
        with pytest.raises(CacheError):
            SharedTableBlock.attach(manifest)

    def test_publish_attach_tables(self, scdm, bg_scdm, thermo_scdm,
                                   tmp_path):
        cache = PrecomputeCache(tmp_path)
        bessel = BesselCache(50.0)
        bessel.table(2), bessel.table(10)
        block = cache.publish(bg_scdm, thermo_scdm, bessel)
        try:
            assert cache.metrics.bytes_shared == block.total_bytes > 0
            att = AttachedTables.attach(block.manifest)
            bg = att.background(scdm)
            th = att.thermal(bg)
            bs = att.bessel()
            tau = np.linspace(thermo_scdm.tau_rec * 0.5, bg_scdm.tau0 * 0.9,
                              100)
            assert np.array_equal(th.visibility(tau),
                                  thermo_scdm.visibility(tau))
            x = np.linspace(0.0, 50.0, 333)
            assert np.array_equal(bs.eval(10, x), bessel.eval(10, x))
            assert att.bytes_mapped == block.total_bytes
            att.close()
        finally:
            block.close()
            block.unlink()


# -- end-to-end: cached runs against the golden snapshots --------------------


def _golden_settings():
    kg = KGrid.from_k(np.geomspace(
        GOLDEN_KGRID["k_min"], GOLDEN_KGRID["k_max"], GOLDEN_KGRID["nk"]))
    return kg, LingerConfig(**GOLDEN_CONFIG)


@pytest.mark.golden
class TestCachedRunsMatchGolden:
    def test_serial_warm_run_matches_golden(self, scdm, cache_dir):
        kg, cfg = _golden_settings()
        # prime, then run entirely from the cache
        PrecomputeCache(cache_dir).thermal(
            PrecomputeCache(cache_dir).background(scdm))
        cache = PrecomputeCache(cache_dir)
        result = run_linger(scdm, kg, cfg, cache=cache)
        assert cache.metrics.misses == 0 and cache.metrics.hits == 2

        stored = json.loads(GOLDEN_CL.read_text())
        l, cl = cl_from_hierarchy(result)
        np.testing.assert_allclose(cl, np.asarray(stored["cl"]),
                                   rtol=RTOL, atol=0.0)
        tk = json.loads(GOLDEN_TK.read_text())
        for name in TK_FIELDS:
            np.testing.assert_allclose(
                [float(getattr(h, name)) for h in result.headers],
                np.asarray(tk[name], dtype=float), rtol=RTOL, atol=0.0,
                err_msg=f"cached run drifted on {name}")

    def test_four_worker_shared_run_matches_golden(self, scdm, cache_dir):
        """The acceptance run: 4 forked workers, one shared mapping."""
        kg, cfg = _golden_settings()
        cache = PrecomputeCache(cache_dir)
        telemetry = Telemetry()
        result, _stats = run_plinger(
            scdm, kg, cfg, nproc=5, backend="procs",
            cache=cache, bessel_l=los_l_grid(64, n=8),
            telemetry=telemetry,
        )
        assert cache.metrics.workers_attached == 4
        assert cache.metrics.bytes_shared > 0
        stored = json.loads(GOLDEN_CL.read_text())
        l, cl = cl_from_hierarchy(result)
        np.testing.assert_allclose(cl, np.asarray(stored["cl"]),
                                   rtol=RTOL, atol=0.0)
        report = telemetry.build_report()
        assert report.cache is not None
        assert report.cache.workers_attached == 4
        assert report.totals["cache_bytes_shared"] == \
            cache.metrics.bytes_shared

    def test_batched_warm_vs_cold_bitwise(self, scdm, fresh_dir):
        """Cache warm vs cold through the batched engine: the cached
        background/thermal tables must reproduce every wire record
        *bitwise* — the cache claims bit-identical reloads, and the
        batched engine must not launder a table difference into a
        trajectory difference."""
        kg, cfg = _golden_settings()
        cold_cache = PrecomputeCache(fresh_dir)
        cold = run_linger(scdm, kg, cfg, batch_size=4, cache=cold_cache)
        assert cold_cache.metrics.misses == 2

        warm_cache = PrecomputeCache(fresh_dir)
        warm = run_linger(scdm, kg, cfg, batch_size=4, cache=warm_cache)
        assert warm_cache.metrics.hits == 2
        assert warm_cache.metrics.misses == 0

        # slot 18 of the header wire format is cpu_seconds (timing,
        # legitimately differs between runs); everything else is physics
        # or deterministic accounting and must match to the last bit
        # (equal_nan: delta_nu_massive is NaN on a massless-nu model)
        physics = [i for i in range(21) if i != 18]
        for hc, hw in zip(cold.headers, warm.headers):
            assert np.array_equal(hc.pack()[physics], hw.pack()[physics],
                                  equal_nan=True), (
                f"warm-cache batched run drifted at k={hc.k:g}"
            )
        for pc, pw in zip(cold.payloads, warm.payloads):
            assert np.array_equal(pc.pack(), pw.pack()), (
                f"warm-cache batched payload drifted at k={pc.k:g}"
            )


# -- telemetry plumbing ------------------------------------------------------


class TestCacheMetrics:
    def test_hit_rate(self):
        m = CacheMetrics()
        m.record_miss("background", 1.0, 100)
        m.record_hit("background", 0.01, 100)
        m.record_hit("bessel", 0.01, 50)
        assert m.hit_rate == pytest.approx(2.0 / 3.0)
        assert m.by_kind["background"] == \
            {"hits": 1, "misses": 1, "corrupt": 0}

    def test_report_json_roundtrip(self, tmp_path):
        m = CacheMetrics()
        m.record_miss("thermal", 0.5, 2048)
        m.record_corrupt("thermal")
        m.bytes_shared = 4096
        m.shared_backend = "shm"
        m.workers_attached = 3
        tel = Telemetry()
        tel.cache = m
        report = tel.build_report()
        path = tmp_path / "report.json"
        report.save(path)
        back = RunReport.load(path)
        assert back.cache is not None
        assert back.cache.misses == 1
        assert back.cache.corrupt_entries == 1
        assert back.cache.bytes_shared == 4096
        assert back.cache.shared_backend == "shm"
        assert back.cache.workers_attached == 3
        assert back.totals["cache_misses"] == 1

    def test_report_without_cache_stays_none(self):
        tel = Telemetry()
        report = tel.build_report()
        assert report.cache is None
        assert "cache" in report.to_dict()


# -- the canonical LOS multipole grid ---------------------------------------


class TestLosLGrid:
    def test_dense_head_sparse_tail(self):
        ls = los_l_grid(500, n=20)
        assert ls[0] == 2
        assert ls[-1] == 500
        assert np.all(np.diff(ls) > 0)
        assert set(range(2, 13)) <= set(int(l) for l in ls)

    def test_small_lmax(self):
        ls = los_l_grid(8)
        assert ls[0] == 2 and ls[-1] == 8

    def test_rejects_bad_lmax(self):
        with pytest.raises(ParameterError):
            los_l_grid(1)

    def test_keys_shared_bessel_table(self, tmp_path):
        """Two runs using the canonical grid share one Bessel entry."""
        cache = PrecomputeCache(tmp_path)
        cache.bessel(los_l_grid(40, n=6), x_max=100.0)
        cache.bessel(los_l_grid(40, n=6), x_max=100.0)
        assert cache.metrics.by_kind["bessel"] == \
            {"hits": 1, "misses": 1, "corrupt": 0}
