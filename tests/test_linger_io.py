"""LINGER output files: ascii headers and run archives."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.linger import (
    load_run,
    read_ascii_headers,
    save_run,
    write_ascii_headers,
)
from repro.spectra import cl_from_hierarchy, cl_integrate_over_k


class TestAsciiHeaders:
    def test_round_trip(self, linger_small, tmp_path):
        path = write_ascii_headers(linger_small, tmp_path / "modes.txt")
        headers = read_ascii_headers(path)
        assert len(headers) == linger_small.kgrid.nk
        for h_in, h_out in zip(linger_small.headers, headers):
            assert h_out.ik == h_in.ik
            assert h_out.k == pytest.approx(h_in.k, rel=1e-9)
            assert h_out.delta_m == pytest.approx(h_in.delta_m, rel=1e-9)

    def test_comments_skipped(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("# only comments\n\n# another\n")
        assert read_ascii_headers(p) == []

    def test_malformed_line_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1.0 2.0 3.0\n")
        with pytest.raises(ParameterError):
            read_ascii_headers(p)


class TestRunArchive:
    def test_round_trip_payloads(self, linger_small, tmp_path):
        path = save_run(linger_small, tmp_path / "run.npz")
        saved = load_run(path)
        assert saved.params == linger_small.params
        assert np.allclose(saved.k, linger_small.k)
        for p_in, p_out in zip(linger_small.payloads, saved.payloads):
            assert np.allclose(p_out.f_gamma, p_in.f_gamma)
            assert np.allclose(p_out.g_gamma, p_in.g_gamma)

    def test_spectra_from_reloaded_run(self, linger_small, tmp_path):
        """A reloaded archive reproduces the hierarchy C_l exactly."""
        path = save_run(linger_small, tmp_path / "run.npz")
        saved = load_run(path)
        l = np.arange(2, 12)
        _, cl_orig = cl_from_hierarchy(linger_small, l_values=l)
        theta = saved.theta_l_matrix()[:, l]
        cl_re = cl_integrate_over_k(saved.k, theta,
                                    n_s=saved.params.n_s)
        assert np.allclose(cl_re, cl_orig, rtol=1e-12)

    def test_delta_m_preserved(self, linger_small, tmp_path):
        path = save_run(linger_small, tmp_path / "run.npz")
        saved = load_run(path)
        assert np.allclose(saved.delta_m, linger_small.delta_m)

    def test_variable_lmax_archive(self, tmp_path, scdm, bg_scdm,
                                   thermo_scdm):
        from repro import KGrid, LingerConfig
        from repro.linger import run_linger

        kg = KGrid.from_k([0.002, 0.02])
        cfg = LingerConfig(record_sources=False, keep_mode_results=False,
                           rtol=3e-4, lmax_mode="scaled", lmax_photon=8,
                           lmax_cap=120)
        res = run_linger(scdm, kg, cfg, background=bg_scdm,
                         thermo=thermo_scdm)
        saved = load_run(save_run(res, tmp_path / "var.npz"))
        assert saved.payloads[0].lmax != saved.payloads[1].lmax
        with pytest.raises(ParameterError):
            saved.theta_l_matrix()
