"""The TCP-sockets backend: wire codec, elastic world, wire-table ladder.

Three layers, tested bottom-up:

* the **frame codec** — length-prefixed binary frames must round-trip
  every float64 payload bit-identically through arbitrary stream
  chunking, and must reject corruption (bad magic, unknown kind,
  oversized or ragged bodies) loudly rather than resynchronize;
* the **world** — real OS processes over real localhost TCP, including
  the elastic paths: a rank joining mid-run and a rank SIGKILLed
  mid-run, both finishing with the fault-free golden spectrum;
* the **wire-table ladder** — a worker that cannot map the master's
  shared-memory block (the cross-host case) must degrade to a
  ``Tag.TABLES`` wire transfer, not raise; co-located ranks must keep
  the zero-copy shm fast path.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import PrecomputeCache
from repro.cache.sharing import (
    SharedTableBlock,
    manifest_to_reals,
)
from repro.errors import CacheError
from repro.linger.kgrid import KGrid
from repro.linger.serial import LingerConfig, run_linger
from repro.mp.backends.inprocess import InProcessWorld
from repro.mp.backends.sockets import (
    FRAME_MSG,
    FRAME_TELEMETRY,
    FrameDecoder,
    FrameError,
    MAGIC,
    SocketsWorld,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.mp.message import Message
from repro.params import CosmologyParams
from repro.plinger import run_plinger
from repro.plinger.driver import _attach_shared_tables
from repro.plinger.tags import Tag
from repro.resilience import FaultTolerance
from repro.spectra import cl_from_hierarchy
from repro.telemetry import Telemetry

#: Snappy fault tolerance for the elastic tests: SIGKILL detection must
#: land well inside the ~2 s of real integration work.
SNAPPY_FT = dict(worker_timeout=2.0, heartbeat_interval=0.25,
                 missed_heartbeats=4, poll_seconds=0.02,
                 payload_timeout=5.0, max_retries=10)


def _msg(data, source=1, tag=5, sent=123.25):
    return Message(source=source, tag=tag,
                   data=np.asarray(data, dtype=np.float64),
                   sent_unix=sent)


# -- frame codec -------------------------------------------------------------

class TestFrameCodec:
    def test_message_round_trip_bit_exact(self):
        vals = np.array([1.5, -0.0, np.nan, np.inf, -np.inf,
                         5e-324, 1.7976931348623157e308])
        frames = FrameDecoder().feed(encode_message(_msg(vals), target=0))
        (kind, body), = frames
        assert kind == FRAME_MSG
        out, target = decode_message(body)
        assert target == 0
        assert (out.source, out.tag, out.sent_unix) == (1, 5, 123.25)
        assert out.data.tobytes() == vals.tobytes()

    def test_zero_length_payload(self):
        (kind, body), = FrameDecoder().feed(
            encode_message(_msg([]), target=2))
        out, target = decode_message(body)
        assert (target, out.data.size) == (2, 0)

    def test_byte_at_a_time_reassembly(self):
        wire = encode_message(_msg(np.arange(16.0)), target=1)
        dec = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames += dec.feed(wire[i:i + 1])
        assert len(frames) == 1
        assert dec.pending_bytes == 0
        out, _ = decode_message(frames[0][1])
        assert np.array_equal(out.data, np.arange(16.0))

    def test_two_frames_one_feed(self):
        wire = (encode_frame(FRAME_TELEMETRY, b"\x00\x00\x00\x00")
                + encode_message(_msg([7.0]), target=1))
        kinds = [k for k, _ in FrameDecoder().feed(wire)]
        assert kinds == [FRAME_TELEMETRY, FRAME_MSG]

    def test_bad_magic_rejected(self):
        wire = bytearray(encode_message(_msg([1.0]), target=0))
        wire[:4] = b"HTTP"
        with pytest.raises(FrameError):
            FrameDecoder().feed(bytes(wire))

    def test_unknown_kind_rejected_encoding_and_decoding(self):
        with pytest.raises(FrameError):
            encode_frame(99, b"")
        wire = bytearray(encode_frame(FRAME_MSG, b""))
        wire[4] = 99
        with pytest.raises(FrameError):
            FrameDecoder().feed(bytes(wire))

    def test_oversized_rejected_both_sides(self):
        with pytest.raises(FrameError):
            encode_frame(FRAME_MSG, b"x" * 65, max_bytes=64)
        # a peer ignoring our cap still cannot make us buffer the body
        wire = encode_frame(FRAME_MSG, b"x" * 65, max_bytes=1 << 20)
        with pytest.raises(FrameError):
            FrameDecoder(max_bytes=64).feed(wire)

    def test_exactly_max_passes(self):
        wire = encode_frame(FRAME_MSG, b"x" * 64, max_bytes=64)
        (kind, body), = FrameDecoder(max_bytes=64).feed(wire)
        assert len(body) == 64

    def test_truncated_msg_prefix_rejected(self):
        with pytest.raises(FrameError):
            decode_message(b"\x01\x02\x03")

    def test_ragged_payload_rejected(self):
        body = encode_message(_msg([1.0]), target=0)[9:]  # strip header
        with pytest.raises(FrameError):
            decode_message(body + b"\x00")  # 8k+1 payload bytes

    def test_incomplete_frame_stays_pending(self):
        wire = encode_message(_msg(np.arange(4.0)), target=0)
        dec = FrameDecoder()
        assert dec.feed(wire[:-1]) == []
        assert dec.pending_bytes == len(wire) - 1
        assert len(dec.feed(wire[-1:])) == 1


# -- codec properties (hypothesis) -------------------------------------------

finite_or_not = st.floats(width=64)  # anything float64, NaN/inf included


@pytest.mark.property
class TestCodecProperties:
    @given(
        payload=st.lists(finite_or_not, min_size=0, max_size=64),
        source=st.integers(0, 2**15),
        target=st.integers(0, 2**15),
        tag=st.integers(1, 64),
        sent=st.floats(min_value=0.0, max_value=2e9,
                       allow_nan=False, allow_infinity=False),
        chunk=st.integers(1, 37),
    )
    @settings(max_examples=150, deadline=None)
    def test_any_payload_survives_chunked_round_trip(
            self, payload, source, target, tag, sent, chunk):
        msg = Message(source=source, tag=tag,
                      data=np.asarray(payload, dtype=np.float64),
                      sent_unix=sent)
        wire = encode_message(msg, target)
        dec = FrameDecoder()
        frames = []
        for i in range(0, len(wire), chunk):
            frames += dec.feed(wire[i:i + chunk])
        assert len(frames) == 1
        assert dec.pending_bytes == 0
        out, out_target = decode_message(frames[0][1])
        # bit-identical, not allclose: the wire must never perturb
        # physics values (NaN payload bits and signed zeros included)
        assert out.data.tobytes() == msg.data.tobytes()
        assert (out.source, out_target, out.tag) == (source, target, tag)
        assert out.sent_unix == sent

    @given(
        bodies=st.lists(st.binary(min_size=0, max_size=80),
                        min_size=1, max_size=6),
        chunk=st.integers(1, 23),
    )
    @settings(max_examples=150, deadline=None)
    def test_frame_stream_reassembles_regardless_of_chunking(
            self, bodies, chunk):
        wire = b"".join(encode_frame(FRAME_TELEMETRY, b) for b in bodies)
        dec = FrameDecoder()
        frames = []
        for i in range(0, len(wire), chunk):
            frames += dec.feed(wire[i:i + chunk])
        assert [b for _, b in frames] == bodies
        assert dec.pending_bytes == 0


# -- the world: real processes over real TCP ---------------------------------

def _echo_worker(mp):
    mp.initpass()
    mp.mycheckone(Tag.INIT, 0)
    data = mp.myrecvreal(3, Tag.INIT, 0)
    mp.mysendreal(data * mp.mytid, Tag.HEADER, 0)
    mp.publish_telemetry({"rank": mp.mytid, "pid": os.getpid()})
    mp.mycheckone(Tag.STOP, 0)
    mp.myrecvreal(1, Tag.STOP, 0)
    mp.endpass()


class TestSocketsWorld:
    def test_exchange_over_real_processes(self):
        world = SocketsWorld(3)
        world.launch(_echo_worker)
        mp0 = world.handle(0)
        mp0.initpass()
        mp0.mybcastreal(np.array([1.0, 2.0, 3.0]), Tag.INIT)
        got = {}
        for _ in range(2):
            tag, src = mp0.mycheckany()
            assert tag == Tag.HEADER
            got[src] = mp0.myrecvreal(3, Tag.HEADER, src)
        mp0.mybcastreal(np.zeros(1), Tag.STOP)
        world.join(30.0)
        assert np.array_equal(got[1], [1.0, 2.0, 3.0])
        assert np.array_equal(got[2], [2.0, 4.0, 6.0])
        # genuinely multi-process: two distinct non-master pids, both
        # reported identically by the HELLO handshake and telemetry
        tele = world.collect_telemetry()
        pids = {tele[r]["pid"] for r in (1, 2)}
        assert len(pids) == 2 and os.getpid() not in pids
        assert world.rank_pids[1] == tele[1]["pid"]
        # bytes genuinely crossed the TCP wire, frame overhead included
        stats = world.wire_stats()
        assert all(s["sent"] > 0 and s["received"] > 0
                   for s in stats.values())

    def test_send_to_unknown_rank_swallowed_not_fatal(self):
        world = SocketsWorld(2)
        try:
            world.route(7, Message.make(0, Tag.WORK, np.zeros(1)))
            assert world.dropped_sends == 1
        finally:
            world.close()


class TestSocketsElasticPhysics:
    """Join and kill mid-run; both must land on the fault-free golden."""

    @pytest.fixture(scope="class")
    def golden(self):
        params = CosmologyParams()
        kgrid = KGrid.from_k(np.geomspace(1e-3, 0.02, 4))
        config = LingerConfig(lmax_photon=8, lmax_nu=8, rtol=1e-4,
                              record_sources=False,
                              keep_mode_results=False)
        serial = run_linger(params, kgrid, config)
        _l, cl_ref = cl_from_hierarchy(serial)
        return params, kgrid, config, cl_ref

    def test_mid_run_join(self, golden):
        params, kgrid, config, cl_ref = golden
        world = SocketsWorld(2)

        def late_joiner():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    world.spawn_extra_worker()
                    return
                except Exception:
                    time.sleep(0.05)

        t = threading.Thread(target=late_joiner, daemon=True)
        t.start()
        result, stats = run_plinger(
            params, kgrid, config, nproc=2, backend="sockets",
            world=world, fault_tolerance=FaultTolerance(**SNAPPY_FT))
        t.join(30.0)
        fr = stats.fault_report
        assert fr is not None and fr.ranks_joined >= 1
        _l, cl = cl_from_hierarchy(result)
        assert np.array_equal(cl, cl_ref)

    def test_sigkill_recovery(self, golden):
        params, kgrid, config, cl_ref = golden

        # The kill must land while the run is still in flight; on a
        # loaded box a fixed sleep races both worker startup and run
        # completion, so the killer waits for a *connected* victim and
        # the whole leg retries if the run still finished fault-free.
        for attempt in range(3):
            world = SocketsWorld(3)

            def killer():
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    ranks = [r for r in world.rank_pids if r != 0]
                    if len(ranks) == 2:
                        time.sleep(0.3)  # let the run get under way
                        try:
                            os.kill(world.child_pid(max(ranks)),
                                    signal.SIGKILL)
                        except (KeyError, ProcessLookupError):
                            pass
                        return
                    time.sleep(0.02)

            t = threading.Thread(target=killer, daemon=True)
            t.start()
            result, stats = run_plinger(
                params, kgrid, config, nproc=3, backend="sockets",
                world=world, fault_tolerance=FaultTolerance(**SNAPPY_FT))
            t.join(30.0)
            # faulted or not, the spectrum must match the serial run
            _l, cl = cl_from_hierarchy(result)
            assert np.array_equal(cl, cl_ref)
            fr = stats.fault_report
            if fr is not None and len(fr.dead_workers) > 0:
                break
        else:
            pytest.fail("SIGKILL never produced a quarantined rank "
                        "in 3 attempts")


# -- the wire-table ladder ---------------------------------------------------

def _table_arrays():
    return {
        "bg/grid": np.linspace(0.0, 1.0, 257),
        "bg/values": np.arange(64.0).reshape(8, 8),
    }


class TestWireTableLadder:
    def test_wire_round_trip_bit_exact(self):
        block = SharedTableBlock.create(_table_arrays())
        try:
            rebuilt = SharedTableBlock.from_wire(block.manifest,
                                                 block.wire_data())
            assert rebuilt.backend == "wire"
            for name, arr in _table_arrays().items():
                assert np.array_equal(rebuilt.arrays[name], arr)
                assert not rebuilt.arrays[name].flags.writeable
        finally:
            block.close()
            block.unlink()

    def test_truncated_wire_data_rejected(self):
        block = SharedTableBlock.create(_table_arrays())
        try:
            with pytest.raises(CacheError):
                SharedTableBlock.from_wire(block.manifest,
                                           block.wire_data()[:4])
        finally:
            block.close()
            block.unlink()

    def test_missing_memmap_degrades_to_cache_error(self, tmp_path):
        # the latent cross-host bug: a memmap manifest names a path
        # that does not exist on this "host" — must raise CacheError
        # (which the resilient attach ladder catches), never a raw
        # FileNotFoundError
        block = SharedTableBlock.create(_table_arrays(), backend="memmap",
                                        dir=str(tmp_path))
        manifest = dict(block.manifest, name=str(tmp_path / "elsewhere"))
        block.close()
        block.unlink()
        with pytest.raises(CacheError):
            SharedTableBlock.attach(manifest)

    def test_wire_backend_manifest_not_attachable(self):
        block = SharedTableBlock.create(_table_arrays())
        try:
            rebuilt = SharedTableBlock.from_wire(block.manifest,
                                                 block.wire_data())
            with pytest.raises(CacheError):
                SharedTableBlock.attach(rebuilt.manifest)
        finally:
            block.close()
            block.unlink()

    def test_attach_degrades_to_wire_transfer(self):
        """A worker that cannot map the segment requests the bytes."""
        block = SharedTableBlock.create(_table_arrays())
        # simulate the remote host: the manifest names a segment that
        # does not exist here
        bad = dict(block.manifest, name="psm_not_on_this_host")
        ft = FaultTolerance(worker_timeout=2.0, max_retries=1,
                            backoff_base=0.01)
        world = InProcessWorld(2)
        mp0, mp1 = world.handle(0), world.handle(1)
        mp0.initpass(), mp1.initpass()
        mp0.mysendreal(manifest_to_reals(bad), Tag.CACHE, 1)

        def master_ships_tables():
            probed = mp0.myprobe(Tag.TABLES, 1, timeout=10.0)
            assert probed is not None
            mp0.myrecvraw(Tag.TABLES, 1)
            mp0.mysendreal(block.wire_data(), Tag.TABLES, 1)

        t = threading.Thread(target=master_ships_tables, daemon=True)
        t.start()
        tel = Telemetry()
        try:
            attached = _attach_shared_tables(mp1, ft, tel)
            t.join(10.0)
            assert attached is not None
            assert attached.block.backend == "wire"
            for name, arr in _table_arrays().items():
                assert np.array_equal(attached.block.arrays[name], arr)
            events = [e["event"] for e in tel.degradation.events]
            assert "attach_wire_transfer" in events
        finally:
            block.close()
            block.unlink()

    def test_unanswered_wire_request_falls_back_to_local(self):
        """A legacy master never answers TABLES: worker rebuilds."""
        block = SharedTableBlock.create(_table_arrays())
        bad = dict(block.manifest, name="psm_not_on_this_host")
        ft = FaultTolerance(worker_timeout=0.3, max_retries=1,
                            backoff_base=0.01)
        world = InProcessWorld(2)
        mp0, mp1 = world.handle(0), world.handle(1)
        mp0.initpass(), mp1.initpass()
        mp0.mysendreal(manifest_to_reals(bad), Tag.CACHE, 1)
        tel = Telemetry()
        try:
            assert _attach_shared_tables(mp1, ft, tel) is None
            events = [e["event"] for e in tel.degradation.events]
            assert "attach_fallback" in events
        finally:
            block.close()
            block.unlink()

    def test_colocated_sockets_run_keeps_shm(self, tmp_path):
        """Forked localhost ranks must map the shm pages, not the wire."""
        params = CosmologyParams()
        kgrid = KGrid.from_k(np.geomspace(1e-3, 0.02, 4))
        config = LingerConfig(lmax_photon=8, lmax_nu=8, rtol=1e-4,
                              record_sources=False,
                              keep_mode_results=False)
        world = SocketsWorld(3)
        _result, stats = run_plinger(
            params, kgrid, config, nproc=3, backend="sockets",
            world=world, cache=PrecomputeCache(str(tmp_path)),
            fault_tolerance=FaultTolerance(**SNAPPY_FT))
        fr = stats.fault_report
        assert fr is not None and fr.table_wire_transfers == 0
        tele = world.collect_telemetry()
        backends = {tele[r]["cache"]["backend"] for r in tele}
        assert backends == {"shm"}
