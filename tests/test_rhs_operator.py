"""The compiled-RHS operator: equivalence, kernels, telemetry.

The refactor's contract, pinned here:

* **bitwise python parity** — the operator-assembled serial and
  batched RHS rows are *bit-identical* (``np.array_equal``, not
  allclose) to the frozen pre-refactor implementation in
  ``tests/reference_rhs.py``, across Hypothesis-randomized states and
  evaluation times, for both the nq=0 and the massive-neutrino
  layouts.  This is what lets the goldens and the wire-record oracles
  stand unchanged.
* **compiled-kernel gate** — the packed plain-python kernel (the numba
  source, run uncompiled) is bitwise too; the lazily-compiled C kernel
  is budgeted at the ``oracle.rhs_kernel`` tolerance (rtol 1e-10) and
  gated out when no C compiler is present, as is numba when absent.
* **kernel resolution** — unknown names raise, unavailable kernels
  fall back to python silently, ``auto`` resolves to something real.
* **telemetry** — eval counters are shared between a batch and its
  lane views, the structural flop census is identical on every path
  (serial / batched / compiled), and the ``RhsMetrics`` report section
  survives the dict round-trip used by the PLINGER worker wire.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

#: ``request`` (for the nq-parametrized fixtures) is function-scoped
#: but only routes to session-scoped background/thermo fixtures, so
#: reuse across examples is sound.
relaxed = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.function_scoped_fixture])

from repro.errors import ParameterError
from repro.perturbations import (
    PerturbationSystem,
    PerturbationSystemBatch,
    StateLayout,
    adiabatic_initial_conditions,
    evolve_mode,
)
from repro.perturbations._rhs_cext import get_cext
from repro.perturbations._rhs_numba import get_numba, kernel_rhs_full
from repro.perturbations.evolve import tau_initial
from repro.perturbations.operator import (
    BoltzmannOperator,
    available_kernels,
    resolve_kernel,
)
from repro.telemetry import RhsMetrics, RunReport, Telemetry
from tests.reference_rhs import ReferencePerturbationSystem

LAYOUT_NQ0 = dict(lmax_photon=8, lmax_nu=8, nq=0, lmax_massive_nu=0)
LAYOUT_NQ4 = dict(lmax_photon=6, lmax_nu=6, nq=4, lmax_massive_nu=4)

KS = np.geomspace(3e-4, 0.05, 5)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
lane_idx = st.integers(min_value=0, max_value=KS.size - 1)
tau_scale = st.floats(min_value=1.5, max_value=50.0)


def _random_state(layout, background, k, rng, q_nodes=None):
    """An adiabatic IC perturbed lognormally — a physical-magnitude
    state that is not on any integrator trajectory."""
    tau0 = tau_initial(float(k))
    y = adiabatic_initial_conditions(layout, background, float(k), tau0,
                                     q_nodes=q_nodes)
    y = y * rng.lognormal(0.0, 0.5, y.size)
    # the hierarchy tails of the IC are exact zeros; give them life so
    # every coupling row is exercised
    y[y == 0.0] = rng.normal(0.0, 1e-6, int(np.sum(y == 0.0)))
    return tau0, y


def _fixtures(request, nq):
    if nq:
        return (request.getfixturevalue("bg_mdm"),
                request.getfixturevalue("thermo_mdm"),
                StateLayout(**LAYOUT_NQ4))
    return (request.getfixturevalue("bg_scdm"),
            request.getfixturevalue("thermo_scdm"),
            StateLayout(**LAYOUT_NQ0))


# ---------------------------------------------------------------------------
# Bitwise parity with the frozen pre-refactor implementation
# ---------------------------------------------------------------------------


@pytest.mark.property
@pytest.mark.parametrize("nq", [0, 4])
class TestBitwiseParity:
    @given(seed=seeds, b=lane_idx, ts=tau_scale)
    @relaxed
    def test_serial_rhs_bitwise(self, request, nq, seed, b, ts):
        bg, thermo, layout = _fixtures(request, nq)
        rng = np.random.default_rng(seed)
        k = float(KS[b])
        new = PerturbationSystem(bg, thermo, k, layout)
        ref = ReferencePerturbationSystem(bg, thermo, k, layout)
        tau0, y = _random_state(layout, bg, k, rng, q_nodes=new.q_nodes)
        tau = ts * tau0
        for name in ("rhs_full", "rhs_tca"):
            dy_new = np.array(getattr(new, name)(tau, y), copy=True)
            dy_ref = getattr(ref, name)(tau, y)
            assert np.array_equal(dy_new, dy_ref), (
                f"{name} not bitwise at nq={nq}, k={k}, seed={seed}")

    @given(seed=seeds, ts=tau_scale)
    @settings(relaxed, max_examples=15)
    def test_batched_rows_bitwise_vs_serial(self, request, nq, seed, ts):
        bg, thermo, layout = _fixtures(request, nq)
        rng = np.random.default_rng(seed)
        B = KS.size
        Y = np.empty((B, layout.n_state))
        tau = np.empty(B)
        batch = PerturbationSystemBatch(bg, thermo, KS, layout)
        for b, k in enumerate(KS):
            tau0, Y[b] = _random_state(layout, bg, float(k), rng,
                                       q_nodes=batch.q_nodes)
            tau[b] = ts * tau0
        for name in ("rhs_full", "rhs_tca"):
            dY = np.array(getattr(batch, name)(tau, Y), copy=True)
            for b, k in enumerate(KS):
                ref = ReferencePerturbationSystem(bg, thermo, float(k),
                                                  layout)
                dy_ref = getattr(ref, name)(float(tau[b]), Y[b])
                assert np.array_equal(dY[b], dy_ref), (
                    f"{name} lane {b} not bitwise at nq={nq}, seed={seed}")

    @given(seed=seeds, b=lane_idx)
    @settings(relaxed, max_examples=10)
    def test_tca_handoff_bitwise(self, request, nq, seed, b):
        bg, thermo, layout = _fixtures(request, nq)
        rng = np.random.default_rng(seed)
        k = float(KS[b])
        new = PerturbationSystem(bg, thermo, k, layout)
        tau0, y = _random_state(layout, bg, k, rng, q_nodes=new.q_nodes)
        y_new, y_ref = y.copy(), y.copy()
        new.initialize_full_from_tca(y_new, 2.0 * tau0)
        ReferencePerturbationSystem(
            bg, thermo, k, layout).initialize_full_from_tca(y_ref, 2.0 * tau0)
        assert np.array_equal(y_new, y_ref)


# ---------------------------------------------------------------------------
# The packed kernel (plain python and compiled)
# ---------------------------------------------------------------------------


def _packed_eval(op, fn, tau, Y):
    """Evaluate a packed-ABI kernel over the whole batch."""
    p = op.pack()
    tau = np.ascontiguousarray(np.asarray(tau, dtype=float))
    Y = np.ascontiguousarray(Y)
    dY = np.zeros_like(Y)
    fn(p["ints"], p["flts"], p["th_c"], p["lane_c"], p["adv_lo"],
       p["adv_hi"], p["nu_pack"], p["mnu_pack"], p["rf_c"],
       tau, Y, dY, 0, op.B)
    return dY


@pytest.mark.parametrize("nq", [0, 4])
def test_packed_python_kernel_bitwise(request, nq):
    """The numba source, run as plain python, is bitwise equal to the
    reference rhs_full — same groupings, same libm calls."""
    bg, thermo, layout = _fixtures(request, nq)
    rng = np.random.default_rng(7)
    Y = np.empty((KS.size, layout.n_state))
    tau = np.empty(KS.size)
    op = BoltzmannOperator(bg, thermo, KS, layout)
    for b, k in enumerate(KS):
        tau0, Y[b] = _random_state(layout, bg, float(k), rng,
                                   q_nodes=op.q_nodes)
        tau[b] = 3.0 * tau0
    dY = _packed_eval(op, kernel_rhs_full, tau, Y)
    for b, k in enumerate(KS):
        ref = ReferencePerturbationSystem(bg, thermo, float(k), layout)
        assert np.array_equal(dY[b], ref.rhs_full(float(tau[b]), Y[b]))


@pytest.mark.parametrize("nq", [0, 4])
@pytest.mark.skipif(get_cext() is None,
                    reason="no C compiler / ctypes kernel unavailable")
def test_cext_kernel_within_oracle_budget(request, nq):
    """The compiled C kernel agrees with the python reference within
    the registered oracle.rhs_kernel budget (rtol 1e-10)."""
    from repro.verify.tolerances import budget

    bg, thermo, layout = _fixtures(request, nq)
    rng = np.random.default_rng(11)
    Y = np.empty((KS.size, layout.n_state))
    tau = np.empty(KS.size)
    op = BoltzmannOperator(bg, thermo, KS, layout)
    for b, k in enumerate(KS):
        tau0, Y[b] = _random_state(layout, bg, float(k), rng,
                                   q_nodes=op.q_nodes)
        tau[b] = 3.0 * tau0
    dY = _packed_eval(op, get_cext(), tau, Y)
    tol = budget("oracle.rhs_kernel")
    for b, k in enumerate(KS):
        ref = ReferencePerturbationSystem(bg, thermo, float(k), layout)
        dy_ref = ref.rhs_full(float(tau[b]), Y[b])
        scale = max(float(np.max(np.abs(dy_ref))), 1e-300)
        dev = float(np.max(np.abs(dY[b] - dy_ref))) / scale
        assert dev <= tol.rtol, f"lane {b}: {dev:.3e} > {tol.rtol:.1e}"


@pytest.mark.skipif(get_numba() is None, reason="numba not installed")
def test_numba_kernel_within_oracle_budget(request):
    from repro.verify.tolerances import budget

    bg, thermo, layout = _fixtures(request, 0)
    rng = np.random.default_rng(13)
    Y = np.empty((KS.size, layout.n_state))
    tau = np.empty(KS.size)
    op = BoltzmannOperator(bg, thermo, KS, layout)
    for b, k in enumerate(KS):
        tau0, Y[b] = _random_state(layout, bg, float(k), rng,
                                   q_nodes=op.q_nodes)
        tau[b] = 3.0 * tau0
    dY = _packed_eval(op, get_numba(), tau, Y)
    tol = budget("oracle.rhs_kernel")
    for b, k in enumerate(KS):
        ref = ReferencePerturbationSystem(bg, thermo, float(k), layout)
        dy_ref = ref.rhs_full(float(tau[b]), Y[b])
        scale = max(float(np.max(np.abs(dy_ref))), 1e-300)
        assert float(np.max(np.abs(dY[b] - dy_ref))) / scale <= tol.rtol


@pytest.mark.skipif("cext" not in available_kernels(),
                    reason="no C compiler")
def test_cext_kernel_threads_through_evolution(bg_scdm, thermo_scdm):
    """One full mode evolved with rhs_kernel='cext' lands on the
    python-kernel trajectory at golden tolerance."""
    kwargs = dict(lmax_photon=8, lmax_nu=8, rtol=3e-4)
    ref = evolve_mode(bg_scdm, thermo_scdm, 0.01, **kwargs)
    com = evolve_mode(bg_scdm, thermo_scdm, 0.01, rhs_kernel="cext",
                      **kwargs)
    np.testing.assert_allclose(com.y_final, ref.y_final,
                               rtol=1e-8, atol=1e-300)


# ---------------------------------------------------------------------------
# Kernel resolution and fallback
# ---------------------------------------------------------------------------


def test_resolve_kernel_contract():
    assert resolve_kernel("python") == "python"
    assert resolve_kernel("auto") in available_kernels()
    assert resolve_kernel("auto") != "auto"
    with pytest.raises(ParameterError):
        resolve_kernel("fortran")
    # unavailable compiled kernels degrade to python, never raise
    for name in ("numba", "cext"):
        assert resolve_kernel(name) in (name, "python")


def test_available_kernels_always_offer_python():
    kernels = available_kernels()
    assert kernels[-1] == "python"
    assert len(set(kernels)) == len(kernels)


def test_system_records_resolved_kernel(bg_scdm, thermo_scdm):
    layout = StateLayout(**LAYOUT_NQ0)
    sys_auto = PerturbationSystem(bg_scdm, thermo_scdm, 0.01, layout,
                                  rhs_kernel="auto")
    assert sys_auto.rhs_kernel in ("python", "numba", "cext")


# ---------------------------------------------------------------------------
# Telemetry: shared counters, flop-census parity, report round-trip
# ---------------------------------------------------------------------------


def test_lane_system_shares_operator_and_counters(bg_scdm, thermo_scdm):
    layout = StateLayout(**LAYOUT_NQ0)
    batch = PerturbationSystemBatch(bg_scdm, thermo_scdm, KS, layout)
    lane = batch.lane_system(2)
    assert lane.op is batch.op
    assert lane.k == float(KS[2])
    with pytest.raises(ParameterError):
        batch.lane_system(KS.size)
    tau0, y = _random_state(layout, bg_scdm, float(KS[2]),
                            np.random.default_rng(3))
    before = batch.op.evals["python"]
    lane.rhs_full(2.0 * tau0, y)
    assert batch.op.evals["python"] == before + 1


def test_flop_census_identical_on_every_path(bg_scdm, thermo_scdm):
    """Satellite: n_flops accounting must not depend on the execution
    path — serial, batched and compiled drivers all report the same
    structural census."""
    layout = StateLayout(**LAYOUT_NQ0)
    serial = PerturbationSystem(bg_scdm, thermo_scdm, 0.01, layout)
    batch = PerturbationSystemBatch(bg_scdm, thermo_scdm, KS, layout)
    compiled = PerturbationSystem(bg_scdm, thermo_scdm, 0.01, layout,
                                  rhs_kernel="auto")
    assert (serial.flops_per_eval() == batch.flops_per_eval()
            == compiled.flops_per_eval()
            == batch.lane_system(0).flops_per_eval())


def test_rhs_eval_counts_match_serial_vs_batched(bg_scdm, thermo_scdm):
    """The telemetry RHS-eval totals agree between the serial and the
    batched evolution of the same mode (identical step sequences)."""
    from repro.perturbations import evolve_modes_batched

    kwargs = dict(lmax_photon=8, lmax_nu=8, rtol=3e-4)
    t_s = Telemetry()
    evolve_mode(bg_scdm, thermo_scdm, 0.01, telemetry=t_s, **kwargs)
    t_b = Telemetry()
    evolve_modes_batched(bg_scdm, thermo_scdm, [0.01], telemetry=t_b,
                         **kwargs)
    assert t_s.rhs is not None and t_b.rhs is not None
    assert t_s.rhs.total_evals == t_b.rhs.total_evals
    assert t_s.modes[-1].n_rhs == t_b.modes[-1].n_rhs
    assert t_s.modes[-1].flops_est == t_b.modes[-1].flops_est


def test_rhs_metrics_roundtrip_and_merge():
    m = RhsMetrics(requested="auto", active="cext",
                   evals={"python": 10, "cext": 90},
                   seconds={"cext": 0.5})
    assert m.total_evals == 100
    assert m.compiled_fraction == pytest.approx(0.9)
    m2 = RhsMetrics.from_dict({"requested": m.requested,
                               "active": m.active,
                               "evals": dict(m.evals),
                               "seconds": dict(m.seconds),
                               "unknown_future_field": 1})
    assert m2 == m
    m2.merge(RhsMetrics(evals={"cext": 10}))
    assert m2.total_evals == 110

    report = RunReport(rhs=m)
    back = RunReport.from_dict(report.to_dict())
    assert back.rhs == m
    assert back.to_dict()["totals"]["rhs_compiled_fraction"] == \
        pytest.approx(0.9)


def test_worker_payload_carries_rhs_section():
    t = Telemetry()
    t.record_rhs(requested="auto", active="cext",
                 evals={"cext": 7}, seconds={"cext": 0.1})
    t2 = Telemetry()
    t2.merge_worker_payload(t.worker_payload())
    assert t2.rhs is not None
    assert t2.rhs.evals == {"cext": 7}
    assert t2.rhs.active == "cext"
