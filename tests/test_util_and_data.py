"""Utilities (ascii plots, tables, timing, images) and the data module."""

import numpy as np
import pytest

from repro.data import (
    COBE_QRMS_PS_UK,
    COMPILATION_1995,
    bandpowers_as_arrays,
)
from repro.skymap import diverging_rgb, write_pgm, write_ppm
from repro.util import Stopwatch, ascii_histogram, ascii_plot, format_table


class TestAsciiPlot:
    def test_contains_markers_and_axis(self):
        out = ascii_plot([1, 2, 3], [1, 4, 9], width=40, height=10)
        assert "*" in out
        assert "+" in out

    def test_log_axes(self):
        out = ascii_plot(np.geomspace(1, 1e4, 20),
                         np.geomspace(1, 100, 20), logx=True, logy=True)
        assert "*" in out

    def test_overlay_marker(self):
        out = ascii_plot([1, 2, 3], [1, 2, 3],
                         overlay=([1.5], [2.5]), overlay_marker="o")
        assert "o" in out

    def test_empty_data_safe(self):
        out = ascii_plot([np.nan], [np.nan])
        assert "no finite data" in out

    def test_histogram(self):
        out = ascii_histogram(np.random.default_rng(0).normal(size=500),
                              bins=10)
        assert out.count("\n") >= 10


class TestFormatTable:
    def test_alignment_and_values(self):
        out = format_table(["name", "value"], [["x", 1.5], ["yy", 2.25]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.5" in out and "2.25" in out

    def test_title(self):
        out = format_table(["a"], [[1.0]], title="My Table")
        assert out.startswith("My Table")


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            sum(range(10000))
        w1 = sw.wall
        with sw:
            sum(range(10000))
        assert sw.wall > w1 >= 0.0
        assert sw.cpu >= 0.0

    def test_stop_before_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestImages(object):
    def test_pgm_format(self, tmp_path):
        path = write_pgm(tmp_path / "t.pgm", np.random.rand(8, 10))
        data = path.read_bytes()
        assert data.startswith(b"P5\n10 8\n255\n")
        assert len(data) == len(b"P5\n10 8\n255\n") + 80

    def test_ppm_format(self, tmp_path):
        path = write_ppm(tmp_path / "t.ppm", np.random.randn(6, 5))
        data = path.read_bytes()
        assert data.startswith(b"P6\n5 6\n255\n")
        assert len(data) == len(b"P6\n5 6\n255\n") + 90

    def test_diverging_map_endpoints(self):
        rgb = diverging_rgb(np.array([[0.0, 0.5, 1.0]]))
        blue, white, red = rgb[0]
        assert blue[2] == 255 and blue[0] == 0  # blue end
        assert tuple(white) == (255, 255, 255)  # centre
        assert red[0] == 255 and red[2] == 0  # red end

    def test_constant_field_safe(self, tmp_path):
        write_pgm(tmp_path / "c.pgm", np.zeros((4, 4)))

    def test_non_2d_rejected(self, tmp_path):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            write_pgm(tmp_path / "bad.pgm", np.zeros(5))


class TestCompilation1995:
    def test_cobe_points_lowest_l(self):
        l_effs = [b.l_eff for b in COMPILATION_1995]
        cobe = [b for b in COMPILATION_1995 if "COBE" in b.experiment]
        assert len(cobe) == 2
        assert min(l_effs) == min(b.l_eff for b in cobe)

    def test_band_powers_physical(self):
        for b in COMPILATION_1995:
            assert 10 < b.delta_t_uk < 100
            assert b.l_lo < b.l_eff < b.l_hi
            assert b.err_plus_uk > 0

    def test_upper_limits_flagged(self):
        uls = [b for b in COMPILATION_1995 if b.is_upper_limit]
        assert len(uls) >= 1
        assert any("OVRO" in b.experiment for b in uls)

    def test_arrays_exclude_upper_limits(self):
        full = bandpowers_as_arrays()
        detections = bandpowers_as_arrays(include_upper_limits=False)
        assert detections["l_eff"].size < full["l_eff"].size

    def test_degree_scale_excess_over_cobe(self):
        """The 1995 data already showed more power at degree scales
        than at COBE scales (the first-peak rise Fig. 2 tests)."""
        arr = bandpowers_as_arrays(include_upper_limits=False)
        cobe_level = np.mean(arr["delta_t_uk"][arr["l_eff"] < 15])
        degree_level = np.mean(
            arr["delta_t_uk"][(arr["l_eff"] > 50) & (arr["l_eff"] < 250)]
        )
        assert degree_level > cobe_level

    def test_cobe_normalization_value(self):
        assert COBE_QRMS_PS_UK == pytest.approx(18.0)
