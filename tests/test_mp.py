"""The message-passing wrapper API and its backends."""

import threading

import numpy as np
import pytest

from repro.errors import MessagePassingError
from repro.mp import Message, available_backends, get_backend
from repro.mp.backends.inprocess import InProcessWorld
from repro.mp.backends.procs import ProcsWorld
from repro.mp.backends.serial import SerialWorld


class TestMessage:
    def test_payload_copied_on_make(self):
        buf = np.array([1.0, 2.0])
        msg = Message.make(0, 3, buf)
        buf[0] = 99.0
        assert msg.data[0] == 1.0

    def test_nbytes_eight_per_real(self):
        assert Message.make(0, 1, np.zeros(21)).nbytes == 168

    def test_flattens(self):
        msg = Message.make(0, 1, np.zeros((2, 3)))
        assert msg.length == 6


class TestBackendRegistry:
    def test_available(self):
        assert set(available_backends()) == {
            "serial", "inprocess", "procs", "sockets",
        }

    def test_unknown_rejected(self):
        with pytest.raises(MessagePassingError):
            get_backend("mpi", 4)

    def test_serial_requires_one_rank(self):
        with pytest.raises(MessagePassingError):
            SerialWorld(2)


class TestSerialLoopback:
    def test_self_send_receive(self):
        mp = SerialWorld().handle(0)
        mp.initpass()
        mp.mysendreal(np.array([1.0, 2.0]), 5, 0)
        tag, src = mp.mycheckany()
        assert (tag, src) == (5, 0)
        out = mp.myrecvreal(2, 5, 0)
        assert np.allclose(out, [1.0, 2.0])

    def test_probe_empty_raises_not_deadlocks(self):
        mp = SerialWorld().handle(0)
        mp.initpass()
        with pytest.raises(MessagePassingError):
            mp.mycheckany()

    def test_uninitialized_rejected(self):
        mp = SerialWorld().handle(0)
        with pytest.raises(MessagePassingError):
            mp.mysendreal(np.zeros(1), 1, 0)

    def test_length_mismatch_rejected(self):
        mp = SerialWorld().handle(0)
        mp.initpass()
        mp.mysendreal(np.zeros(3), 1, 0)
        with pytest.raises(MessagePassingError):
            mp.myrecvreal(4, 1, 0)

    def test_stats_counted(self):
        mp = SerialWorld().handle(0)
        mp.initpass()
        mp.mysendreal(np.zeros(10), 1, 0)
        mp.myrecvreal(10, 1, 0)
        assert mp.stats.messages_sent == 1
        assert mp.stats.bytes_sent == 80
        assert mp.stats.bytes_received == 80


class TestInProcess:
    def test_ping_pong_between_threads(self):
        world = InProcessWorld(2)
        results = {}

        def worker():
            mp = world.handle(1)
            mp.initpass()
            mp.mycheckone(7, 0)
            data = mp.myrecvreal(3, 7, 0)
            mp.mysendreal(data * 2, 8, 0)
            mp.endpass()

        t = threading.Thread(target=worker)
        t.start()
        mp0 = world.handle(0)
        mp0.initpass()
        mp0.mysendreal(np.array([1.0, 2.0, 3.0]), 7, 1)
        tag = mp0.mychecktid(1)
        assert tag == 8
        results["reply"] = mp0.myrecvreal(3, 8, 1)
        t.join(10.0)
        assert np.allclose(results["reply"], [2.0, 4.0, 6.0])

    def test_broadcast_reaches_all_workers(self):
        world = InProcessWorld(4)
        got = {}
        barrier = threading.Barrier(4)

        def worker(rank):
            mp = world.handle(rank)
            mp.initpass()
            mp.mycheckone(1, 0)
            got[rank] = mp.myrecvreal(5, 1, 0)
            barrier.wait(10.0)

        threads = [threading.Thread(target=worker, args=(r,))
                   for r in range(1, 4)]
        for t in threads:
            t.start()
        mp0 = world.handle(0)
        mp0.initpass()
        mp0.mybcastreal(np.arange(5.0), 1)
        barrier.wait(10.0)
        for t in threads:
            t.join(10.0)
        assert set(got) == {1, 2, 3}
        for v in got.values():
            assert np.allclose(v, np.arange(5.0))
        # broadcast = nproc-1 sends
        assert mp0.stats.messages_sent == 3

    def test_fifo_within_matching_subset(self):
        world = InProcessWorld(2)
        mp0 = world.handle(0)
        mp1 = world.handle(1)
        mp0.initpass()
        mp1.initpass()
        mp1.mysendreal(np.array([1.0]), 4, 0)
        mp1.mysendreal(np.array([2.0]), 4, 0)
        first = mp0.myrecvreal(1, 4, 1)
        second = mp0.myrecvreal(1, 4, 1)
        assert first[0] == 1.0 and second[0] == 2.0

    def test_probe_does_not_consume(self):
        world = InProcessWorld(2)
        mp0, mp1 = world.handle(0), world.handle(1)
        mp0.initpass(); mp1.initpass()
        mp1.mysendreal(np.array([5.0]), 9, 0)
        assert mp0.mycheckany() == (9, 1)
        assert mp0.mycheckany() == (9, 1)  # still there
        assert mp0.myrecvreal(1, 9, 1)[0] == 5.0

    def test_invalid_target_rejected(self):
        world = InProcessWorld(2)
        mp0 = world.handle(0)
        mp0.initpass()
        with pytest.raises(MessagePassingError):
            mp0.mysendreal(np.zeros(1), 1, 5)


class TestProcs:
    def test_ping_pong_across_processes(self):
        world = ProcsWorld(2, timeout=30.0)

        def worker(mp):
            mp.initpass()
            mp.mycheckone(7, 0)
            data = mp.myrecvreal(4, 7, 0)
            mp.mysendreal(data[::-1], 8, 0)
            mp.endpass()

        world.launch(worker)
        mp0 = world.handle(0)
        mp0.initpass()
        mp0.mysendreal(np.array([1.0, 2.0, 3.0, 4.0]), 7, 1)
        mp0.mycheckone(8, 1)
        reply = mp0.myrecvreal(4, 8, 1)
        world.join(30.0)
        assert np.allclose(reply, [4.0, 3.0, 2.0, 1.0])

    def test_multiple_workers_tagged_routing(self):
        world = ProcsWorld(3, timeout=30.0)

        def worker(mp):
            mp.initpass()
            mp.mycheckone(1, 0)
            data = mp.myrecvreal(1, 1, 0)
            mp.mysendreal(np.array([data[0] * mp.mytid]), 2, 0)
            mp.endpass()

        world.launch(worker)
        mp0 = world.handle(0)
        mp0.initpass()
        mp0.mybcastreal(np.array([10.0]), 1)
        got = {}
        for _ in range(2):
            tag, src = mp0.mycheckany()
            got[src] = mp0.myrecvreal(1, 2, src)[0]
        world.join(30.0)
        assert got == {1: 10.0, 2: 20.0}
