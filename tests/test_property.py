"""Hypothesis property tests: structural invariants under random input.

These check the data-plumbing layers (wavenumber grids, wire records)
for properties that must hold for *every* input, not just the
hand-picked cases in the example-based tests:

* ``KGrid.from_k`` always yields an ascending, duplicate-free grid
  whose dispatch order is a permutation visiting the largest k first;
* the ModeHeader / ModePayload wire round-trip (pack -> unpack) is
  bit-identical for every finite float64 payload — the PLINGER wire
  must never perturb physics values.

All tests carry the ``property`` marker (deselect with
``-m "not property"``); none of them integrates any physics, so the
whole file runs in well under a second per example budget.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import KGrid
from repro.linger.records import HEADER_LENGTH, ModeHeader, ModePayload

pytestmark = pytest.mark.property

#: Positive, finite, well-separated-from-overflow wavenumbers.
ks = st.floats(min_value=1e-6, max_value=1e3,
               allow_nan=False, allow_infinity=False)

#: Any finite float64 — wire values must survive verbatim, including
#: negatives, subnormal-adjacent magnitudes and huge exponents.
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestKGridProperties:
    @given(st.lists(ks, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_sorted_and_deduplicated(self, k_list):
        g = KGrid.from_k(k_list)
        assert np.all(np.diff(g.k) > 0)
        assert set(g.k.tolist()) == set(k_list)

    @given(st.lists(ks, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_dispatch_order_is_permutation_largest_first(self, k_list):
        g = KGrid.from_k(k_list)
        assert sorted(g.dispatch_order.tolist()) == list(range(g.nk))
        dispatched = g.k[g.dispatch_order]
        assert np.all(np.diff(dispatched) < 0) or g.nk == 1
        assert dispatched[0] == g.k.max()

    @given(st.lists(ks, min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_input_order_invariance(self, k_list, rng):
        g1 = KGrid.from_k(k_list)
        shuffled = list(k_list)
        rng.shuffle(shuffled)
        g2 = KGrid.from_k(shuffled)
        assert np.array_equal(g1.k, g2.k)
        assert np.array_equal(g1.dispatch_order, g2.dispatch_order)


header_values = hnp.arrays(np.float64, (HEADER_LENGTH,), elements=finite)


class TestRecordRoundTrip:
    @given(header_values, st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_header_roundtrip_bit_identical(self, buf, lmax):
        # slots 0 and 20 are int-coded on the wire (ik, lmax)
        buf[0] = float(abs(int(buf[0]) % 100_000))
        buf[20] = float(lmax)
        header = ModeHeader.unpack(buf)
        wire = header.pack()
        assert wire.dtype == np.float64
        assert np.array_equal(wire, buf)  # bitwise: exact equality
        again = ModeHeader.unpack(wire)
        assert again == header

    @given(st.integers(min_value=0, max_value=64), st.data())
    @settings(max_examples=200, deadline=None)
    def test_payload_roundtrip_bit_identical(self, lmax, data):
        buf = data.draw(
            hnp.arrays(np.float64, (2 * lmax + 8,), elements=finite)
        )
        buf[0] = float(abs(int(buf[0]) % 100_000))
        payload = ModePayload.unpack(buf, lmax)
        assert payload.lmax == lmax
        assert payload.wire_length == buf.size
        wire = payload.pack()
        assert np.array_equal(wire, buf)
        again = ModePayload.unpack(wire, lmax)
        assert np.array_equal(again.f_gamma, payload.f_gamma)
        assert np.array_equal(again.g_gamma, payload.g_gamma)


class TestSparseKGridProperties:
    @given(st.lists(ks, min_size=2, max_size=60, unique=True),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=200, deadline=None)
    def test_subset_sorted_deduped_with_endpoints(self, k_list, factor):
        from repro.linger.kgrid import sparse_kgrid

        dense = KGrid.from_k(k_list)
        coarse = sparse_kgrid(dense, factor)
        assert np.all(np.diff(coarse.k) > 0)
        # every coarse value is a bitwise member of the dense grid
        assert np.isin(coarse.k, dense.k).all()
        # both endpoints survive, whatever the stride
        assert coarse.k[0] == dense.k[0]
        assert coarse.k[-1] == dense.k[-1]

    @given(st.lists(ks, min_size=2, max_size=60, unique=True),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=200, deadline=None)
    def test_every_dense_k_is_bracketed(self, k_list, factor):
        from repro.linger.kgrid import sparse_kgrid

        dense = KGrid.from_k(k_list)
        coarse = sparse_kgrid(dense, factor)
        assert np.all(dense.k >= coarse.k[0])
        assert np.all(dense.k <= coarse.k[-1])
        # consecutive coarse nodes are at most `factor` dense steps apart
        pos = np.searchsorted(dense.k, coarse.k)
        assert np.all(np.diff(pos) <= factor)

    @given(st.lists(ks, min_size=1, max_size=60, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_factor_one_is_identity(self, k_list):
        from repro.linger.kgrid import sparse_kgrid

        dense = KGrid.from_k(k_list)
        assert np.array_equal(sparse_kgrid(dense, 1).k, dense.k)


class TestSourceInterpolationProperties:
    @given(st.lists(ks, min_size=4, max_size=24, unique=True),
           st.integers(min_value=2, max_value=16),
           st.data())
    @settings(max_examples=100, deadline=None)
    def test_coarse_nodes_come_back_bitwise(self, k_list, n_tau, data):
        """Rows at coarse nodes survive interpolation bit-identically:
        the exact-hit path must never round-trip through the spline."""
        from repro.spectra.los import interpolate_sources_k

        k_coarse = np.sort(np.asarray(k_list, dtype=float))
        rows = data.draw(
            hnp.arrays(np.float64, (k_coarse.size, n_tau),
                       elements=st.floats(min_value=-1e6, max_value=1e6,
                                          allow_nan=False))
        )
        # dense grid = coarse nodes plus midpoints
        mids = 0.5 * (k_coarse[:-1] + k_coarse[1:])
        k_dense = np.unique(np.concatenate([k_coarse, mids]))
        out = interpolate_sources_k(k_coarse, rows, k_dense)
        idx = np.searchsorted(k_dense, k_coarse)
        assert np.array_equal(out[idx], rows)
