"""Cross-backend conformance: one protocol, four transports.

Every mp backend — serial loopback, in-process thread mailboxes,
fork+queue processes, and TCP sockets — implements the same 8-routine
PLINGER wrapper.  Conformance means more than "each one works": the
*books must match*.  The same exchange must produce identical traffic
accounting (message counts, byte counts, per-tag breakdowns) on every
transport, and a PLINGER spectrum must come out bitwise identical to
the serial reference no matter which wire carried it.  Any divergence
is a transport leaking into the physics or into the paper's
message-economics table.
"""

import threading

import numpy as np
import pytest

from repro.linger.kgrid import KGrid
from repro.linger.serial import LingerConfig, run_linger
from repro.mp import available_backends, get_backend
from repro.plinger import run_plinger
from repro.plinger.tags import Tag
from repro.spectra import cl_from_hierarchy

#: Multi-rank backends (serial is the 1-rank degenerate case).
MP_BACKENDS = ("inprocess", "procs", "sockets")

WRAPPER_ROUTINES = (
    "initpass", "endpass", "mysendreal", "mybcastreal",
    "mycheckany", "mycheckone", "mychecktid", "myrecvreal",
)


def _world(backend: str, nproc: int = 3):
    return get_backend(backend, 1 if backend == "serial" else nproc)


# -- the shared exchange -----------------------------------------------------
#
# Module-level entry so fork-based backends can host it: receive the
# 5-real INIT broadcast, echo it doubled as a HEADER, wait for STOP,
# publish a telemetry blob carrying the rank's own traffic books.

def _echo_entry(mp):
    mp.initpass()
    mp.mycheckone(Tag.INIT, 0)
    data = mp.myrecvreal(5, Tag.INIT, 0)
    mp.mysendreal(data * 2.0, Tag.HEADER, 0)
    mp.mycheckone(Tag.STOP, 0)
    mp.myrecvreal(1, Tag.STOP, 0)
    mp.publish_telemetry({"rank": mp.mytid,
                          "traffic": mp.stats.as_dict()})
    mp.endpass()


def _run_exchange(backend: str, nproc: int = 3):
    """Drive the bcast/echo/stop exchange; return the master's books,
    the replies, and the collected telemetry."""
    world = _world(backend, nproc)
    threads = []
    if backend == "inprocess":
        threads = [threading.Thread(target=_echo_entry,
                                    args=(world.handle(r),))
                   for r in range(1, nproc)]
        for t in threads:
            t.start()
    else:
        world.launch(_echo_entry)
    mp0 = world.handle(0)
    mp0.initpass()
    mp0.mybcastreal(np.arange(5.0), Tag.INIT)
    replies = {}
    for _ in range(nproc - 1):
        tag, src = mp0.mycheckany()
        assert tag == Tag.HEADER
        assert mp0.mychecktid(src) == Tag.HEADER
        replies[src] = mp0.myrecvreal(5, Tag.HEADER, src)
    mp0.mybcastreal(np.zeros(1), Tag.STOP)
    for t in threads:
        t.join(30.0)
    if not threads:
        world.join(30.0)
    telemetry = world.collect_telemetry()
    mp0.endpass()
    return mp0.stats, replies, telemetry


# -- registry contract -------------------------------------------------------

class TestRegistryContract:
    def test_every_advertised_backend_constructs(self):
        for name in available_backends():
            world = _world(name)
            assert world.nproc >= 1

    def test_every_handle_speaks_the_wrapper_api(self):
        for name in available_backends():
            mp = _world(name).handle(0)
            for routine in WRAPPER_ROUTINES:
                assert callable(getattr(mp, routine)), (name, routine)

    def test_initpass_identity_conforms(self):
        for name in available_backends():
            mp = _world(name).handle(0)
            assert mp.initpass() == (0, 0), name
            assert (mp.mytid, mp.mastid) == (0, 0), name


# -- loopback: the one exchange every backend supports -----------------------

class TestLoopbackConformance:
    @pytest.mark.parametrize("backend",
                             ("serial",) + MP_BACKENDS)
    def test_self_exchange_books_identical(self, backend):
        mp = _world(backend).handle(0)
        mp.initpass()
        mp.mysendreal(np.arange(10.0), 5, 0)
        assert mp.mycheckany() == (5, 0)
        out = mp.myrecvreal(10, 5, 0)
        assert np.array_equal(out, np.arange(10.0))
        book = mp.stats.as_dict()
        # the identical books on every transport
        assert book["messages_sent"] == 1
        assert book["messages_received"] == 1
        assert book["bytes_sent"] == 80
        assert book["bytes_received"] == 80
        assert book["sent_by_tag"] == {"5": {"count": 1, "bytes": 80}}
        assert book["received_by_tag"] == {"5": {"count": 1, "bytes": 80}}


# -- multi-rank exchange: identical accounting and telemetry -----------------

class TestExchangeConformance:
    def test_books_replies_telemetry_identical_across_backends(self):
        books, all_replies, all_telemetry = {}, {}, {}
        for backend in MP_BACKENDS:
            stats, replies, telemetry = _run_exchange(backend)
            books[backend] = stats.as_dict()
            all_replies[backend] = replies
            all_telemetry[backend] = telemetry

        ref = books[MP_BACKENDS[0]]
        # 2 broadcasts x 2 workers sent; 2 echoes received
        assert ref["messages_sent"] == 4
        assert ref["messages_received"] == 2
        for backend in MP_BACKENDS[1:]:
            assert books[backend] == ref, backend

        for backend in MP_BACKENDS:
            replies = all_replies[backend]
            assert set(replies) == {1, 2}, backend
            for reply in replies.values():
                assert np.array_equal(reply, 2.0 * np.arange(5.0))

        for backend in MP_BACKENDS:
            telemetry = all_telemetry[backend]
            assert set(telemetry) == {1, 2}, backend
            for rank, blob in telemetry.items():
                assert blob["rank"] == rank
        # each worker's own books match across transports too
        ref_t = all_telemetry[MP_BACKENDS[0]]
        for backend in MP_BACKENDS[1:]:
            for rank in (1, 2):
                assert (all_telemetry[backend][rank]["traffic"]
                        == ref_t[rank]["traffic"]), (backend, rank)


# -- the physics: bitwise C_l and identical message economics ----------------

class TestPlingerConformance:
    @pytest.fixture(scope="class")
    def reference(self):
        kgrid = KGrid.from_k(np.geomspace(1e-3, 0.02, 4))
        config = LingerConfig(lmax_photon=8, lmax_nu=8, rtol=1e-4,
                              record_sources=False,
                              keep_mode_results=False)
        from repro.params import CosmologyParams
        params = CosmologyParams()
        serial = run_linger(params, kgrid, config)
        _l, cl_ref = cl_from_hierarchy(serial)
        return params, kgrid, config, cl_ref

    @pytest.mark.parametrize("backend", MP_BACKENDS)
    def test_cl_bitwise_and_message_count(self, reference, backend):
        params, kgrid, config, cl_ref = reference
        result, stats = run_plinger(params, kgrid, config, nproc=3,
                                    backend=backend)
        _l, cl = cl_from_hierarchy(result)
        assert np.array_equal(cl, cl_ref), backend
        # message economics identical on every transport: one READY
        # per worker plus one HEADER + one PAYLOAD per mode
        assert stats.master_messages_received == 2 + 2 * kgrid.nk
        assert stats.backend == backend
