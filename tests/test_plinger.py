"""The PLINGER master/worker protocol, with fake and real work."""

import threading

import numpy as np
import pytest

from repro import KGrid, LingerConfig, ProtocolError
from repro.linger.records import ModeHeader, ModePayload
from repro.mp.backends.inprocess import InProcessWorld
from repro.plinger import Tag, master_subroutine, run_plinger, worker_subroutine


def fake_compute(ik: int, lmax: int = 8):
    """A deterministic stand-in for the Boltzmann integration."""
    header = ModeHeader(
        ik=ik, k=0.01 * ik, tau_end=100.0, a_end=1.0, delta_c=-float(ik),
        delta_b=0.0, delta_g=0.0, delta_nu=0.0, delta_nu_massive=0.0,
        theta_b=0.0, theta_g=0.0, theta_nu=0.0, eta=0.0, hdot=0.0,
        etadot=0.0, phi=0.0, psi=0.0, delta_m=-float(ik), cpu_seconds=0.0,
        n_rhs=1.0, lmax=lmax,
    )
    payload = ModePayload(
        ik=ik, k=0.01 * ik, tau_end=100.0, a_end=1.0, amplitude=1.0,
        n_steps=1.0, f_gamma=np.full(lmax + 1, float(ik)),
        g_gamma=np.zeros(lmax + 1),
    )
    return header, payload


class TestTags:
    def test_paper_values(self):
        assert Tag.INIT == 1
        assert Tag.READY == 2
        assert Tag.WORK == 3
        assert Tag.HEADER == 4
        assert Tag.PAYLOAD == 5
        assert Tag.STOP == 6


class TestProtocolFakeWork:
    def run_world(self, nproc, nk, lmax_by_ik=None):
        world = InProcessWorld(nproc)
        kgrid = KGrid.from_k(0.01 * np.arange(1, nk + 1))
        logs = {}

        def worker(rank):
            mp = world.handle(rank)
            mp.initpass()
            logs[rank] = worker_subroutine(
                mp, lambda ik: fake_compute(
                    ik, lmax_by_ik(ik) if lmax_by_ik else 8)
            )
            mp.endpass()

        threads = [threading.Thread(target=worker, args=(r,))
                   for r in range(1, nproc)]
        for t in threads:
            t.start()
        mp0 = world.handle(0)
        mp0.initpass()
        master_log = master_subroutine(mp0, kgrid)
        for t in threads:
            t.join(20.0)
            assert not t.is_alive()
        return kgrid, master_log, logs, mp0

    def test_all_modes_completed_once(self):
        kgrid, log, worker_logs, _ = self.run_world(nproc=4, nk=11)
        assert sorted(h.ik for h in log.headers) == list(range(1, 12))
        assert sum(wl.modes_done for wl in worker_logs.values()) == 11

    def test_largest_k_dispatched_first(self):
        kgrid, log, _, _ = self.run_world(nproc=2, nk=7)
        # single worker -> dispatch order fully observable
        assert log.dispatched == [7, 6, 5, 4, 3, 2, 1]

    def test_all_workers_stopped(self):
        _, log, _, _ = self.run_world(nproc=5, nk=3)
        assert log.stops_sent == 4

    def test_more_workers_than_work(self):
        _, log, worker_logs, _ = self.run_world(nproc=6, nk=2)
        assert sorted(h.ik for h in log.headers) == [1, 2]
        assert log.stops_sent == 5

    def test_variable_message_lengths(self):
        """lmax (and so the tag-5 length) varies per mode, as in the
        paper where larger k needs more moments."""
        _, log, _, _ = self.run_world(
            nproc=3, nk=6, lmax_by_ik=lambda ik: 4 + 3 * ik
        )
        lengths = sorted(p.wire_length for p in log.payloads)
        assert lengths == sorted(2 * (4 + 3 * ik) + 8 for ik in range(1, 7))

    def test_init_broadcast_received(self):
        _, _, worker_logs, _ = self.run_world(nproc=3, nk=2)
        for wl in worker_logs.values():
            assert wl.init_data is not None and wl.init_data.size == 5

    def test_master_traffic_accounting(self):
        nk, nproc = 5, 3
        _, log, _, mp0 = self.run_world(nproc=nproc, nk=nk)
        # sent: (nproc-1) INIT + nk WORK + (nproc-1) STOP
        assert mp0.stats.messages_sent == (nproc - 1) + nk + (nproc - 1)
        # received: (nproc-1) READY + nk (HEADER + PAYLOAD)
        assert mp0.stats.messages_received == (nproc - 1) + 2 * nk


class TestWorkerErrors:
    def test_worker_rejects_bad_ik(self):
        world = InProcessWorld(2)
        mp0, mp1 = world.handle(0), world.handle(1)
        mp0.initpass()
        errors = []

        def worker():
            mp1.initpass()
            try:
                worker_subroutine(mp1, lambda ik: fake_compute(ik))
            except ProtocolError as e:
                errors.append(e)

        t = threading.Thread(target=worker)
        t.start()
        mp0.mybcastreal(np.zeros(5), Tag.INIT)
        mp0.mycheckone(Tag.READY, 1)
        mp0.myrecvreal(1, Tag.READY, 1)
        mp0.mysendreal(np.array([-3.0]), Tag.WORK, 1)  # invalid ik
        t.join(10.0)
        assert errors


@pytest.mark.parametrize("backend", ["inprocess", "procs"])
class TestEndToEnd:
    def test_plinger_matches_linger(self, backend, scdm, bg_scdm,
                                    thermo_scdm, linger_small):
        """PLINGER over real integrations reproduces the serial run's
        records exactly (same code, different transport)."""
        kg = KGrid.from_k(np.geomspace(1e-3, 0.02, 4))
        cfg = LingerConfig(record_sources=False, keep_mode_results=False,
                           rtol=1e-4)
        from repro.linger import run_linger

        serial = run_linger(scdm, kg, cfg, background=bg_scdm,
                            thermo=thermo_scdm)
        par, stats = run_plinger(scdm, kg, cfg, nproc=3, backend=backend,
                                 background=bg_scdm, thermo=thermo_scdm)
        assert np.allclose(par.delta_m, serial.delta_m, rtol=1e-12)
        for ps, pp in zip(serial.payloads, par.payloads):
            assert np.allclose(ps.f_gamma, pp.f_gamma, rtol=1e-12)
        assert stats.nproc == 3
        assert stats.master_messages_received == 2 + 2 * kg.nk


class TestDriverValidation:
    def test_needs_two_ranks(self, scdm):
        kg = KGrid.from_k([0.01])
        from repro.errors import MessagePassingError

        with pytest.raises(MessagePassingError):
            run_plinger(scdm, kg, nproc=1)

    def test_rejects_mode_keeping_config(self, scdm):
        kg = KGrid.from_k([0.01])
        cfg = LingerConfig(keep_mode_results=True)
        with pytest.raises(ProtocolError):
            run_plinger(scdm, kg, cfg, nproc=2)
