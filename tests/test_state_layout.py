"""State-vector layout bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perturbations import StateLayout


class TestLayout:
    def test_blocks_contiguous(self):
        lo = StateLayout(lmax_photon=12, lmax_nu=10, nq=4, lmax_massive_nu=6)
        assert lo.i_fg == 6
        assert lo.i_gg == lo.i_fg + 13
        assert lo.i_nl == lo.i_gg + 13
        assert lo.i_psi == lo.i_nl + 11
        assert lo.n_state == lo.i_psi + 4 * 7

    def test_no_massive_sector(self):
        lo = StateLayout(lmax_photon=8, lmax_nu=8)
        assert lo.n_state == 6 + 9 + 9 + 9
        assert lo.psi_matrix(lo.zeros()).size == 0

    def test_slices_cover_exactly(self):
        lo = StateLayout(lmax_photon=5, lmax_nu=7, nq=3, lmax_massive_nu=4)
        y = lo.zeros()
        y[lo.sl_fg] = 1
        y[lo.sl_gg] = 2
        y[lo.sl_nl] = 3
        y[lo.sl_psi] = 4
        # scalars untouched, every hierarchy slot covered exactly once
        assert np.all(y[:6] == 0)
        assert np.count_nonzero(y) == lo.n_state - 6

    def test_psi_matrix_is_view(self):
        lo = StateLayout(lmax_photon=4, lmax_nu=4, nq=2, lmax_massive_nu=3)
        y = lo.zeros()
        lo.psi_matrix(y)[1, 2] = 7.0
        assert y[lo.i_psi + 1 * 4 + 2] == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StateLayout(lmax_photon=2, lmax_nu=5)
        with pytest.raises(ValueError):
            StateLayout(lmax_photon=5, lmax_nu=2)
        with pytest.raises(ValueError):
            StateLayout(lmax_photon=5, lmax_nu=5, nq=2, lmax_massive_nu=1)
        with pytest.raises(ValueError):
            StateLayout(lmax_photon=5, lmax_nu=5, nq=-1)

    @given(
        lg=st.integers(3, 40),
        ln=st.integers(3, 40),
        nq=st.integers(0, 10),
        lm=st.integers(2, 12),
    )
    @settings(max_examples=50, deadline=None)
    def test_size_formula(self, lg, ln, nq, lm):
        lo = StateLayout(lmax_photon=lg, lmax_nu=ln, nq=nq,
                         lmax_massive_nu=lm if nq else 0)
        expected = 6 + 2 * (lg + 1) + (ln + 1) + nq * ((lm if nq else 0) + 1)
        assert lo.n_state == expected
        assert lo.zeros().shape == (expected,)
