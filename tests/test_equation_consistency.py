"""Equation-level consistency along recorded solutions.

The recorder stores both state variables and their analytic time
derivatives (hdot, etadot, alpha_dot...).  Splining the recorded state
and differentiating numerically must reproduce those derivatives —
a direct check that the equations coded in the RHS are the equations
the solution actually obeys, independent of any physics expectation.
"""

import numpy as np
import pytest
from scipy.interpolate import CubicSpline


def spline_derivative(tau, values):
    return CubicSpline(tau, values).derivative(1)(tau)


@pytest.fixture(scope="module")
def sol(mode_k05):
    """Records restricted to the smooth full-hierarchy region (the
    spline derivative is inaccurate at the grid edges and across the
    TCA switch)."""
    m = mode_k05
    sel = (m.tau > 1.3 * m.tau_switch) & (m.tau < 0.97 * m.tau_end)
    r = {name: arr[sel] for name, arr in m.records.items()}
    return m, m.tau[sel], r


class TestMetricConsistency:
    def test_eta_dot_matches_records(self, sol):
        m, tau, r = sol
        num = spline_derivative(tau, r["eta"])
        scale = np.max(np.abs(r["etadot"]))
        # interior points only (spline ends are one-sided)
        assert np.allclose(num[3:-3], r["etadot"][3:-3], atol=0.02 * scale)

    def test_alpha_dot_matches_records(self, sol):
        """alpha' is computed *algebraically* (= psi - H alpha); the
        numerical derivative of the recorded alpha must agree."""
        m, tau, r = sol
        num = spline_derivative(tau, r["alpha"])
        scale = np.max(np.abs(r["alpha_dot"]))
        assert np.allclose(num[3:-3], r["alpha_dot"][3:-3],
                           atol=0.03 * scale)

    def test_phi_definition(self, sol, bg_scdm):
        """phi = eta - H alpha pointwise."""
        m, tau, r = sol
        hc = bg_scdm.conformal_hubble(r["a"])
        assert np.allclose(r["phi"], r["eta"] - hc * r["alpha"],
                           rtol=1e-10)

    def test_psi_from_shear_scaling(self, sol, scdm):
        """k^2 (phi - psi) = 12 pi G a^2 (rho+p) sigma: with only
        radiation carrying shear, the recorded gap must scale away like
        the radiation fraction — tiny by the matter era."""
        m, tau, r = sol
        gap_early = np.abs(r["phi"] - r["psi"])[r["a"] < 2e-3]
        gap_late = np.abs(r["phi"] - r["psi"])[r["a"] > 0.2]
        phi_scale = np.max(np.abs(r["phi"]))
        assert np.max(gap_late) < 0.01 * phi_scale
        assert np.max(gap_early) > np.max(gap_late)


class TestFluidConsistency:
    def test_cdm_continuity(self, sol):
        """delta_c' = -h'/2 along the solution."""
        m, tau, r = sol
        num = spline_derivative(tau, r["delta_c"])
        expected = -0.5 * r["hdot"]
        scale = np.max(np.abs(expected))
        assert np.allclose(num[3:-3], expected[3:-3], atol=0.02 * scale)

    def test_baryon_continuity(self, sol):
        """delta_b' = -theta_b - h'/2."""
        m, tau, r = sol
        num = spline_derivative(tau, r["delta_b"])
        expected = -r["theta_b"] - 0.5 * r["hdot"]
        scale = np.max(np.abs(expected))
        assert np.allclose(num[3:-3], expected[3:-3], atol=0.02 * scale)

    def _dense_window(self, mode, tau):
        """The uniformly-sampled window around recombination.

        The free-streaming photon/neutrino records oscillate at
        frequency ~k; outside the dense window the log-spaced grid
        aliases them and a spline derivative is meaningless.
        """
        return (tau > 1.3 * mode.tau_switch) & (tau < 430.0)

    def test_photon_continuity(self, sol):
        """delta_g' = -(4/3) theta_g - (2/3) h' (dense window)."""
        m, tau, r = sol
        sel = self._dense_window(m, tau)
        num = spline_derivative(tau[sel], r["delta_g"][sel])
        expected = (-(4.0 / 3.0) * r["theta_g"] - (2.0 / 3.0) * r["hdot"])[sel]
        scale = np.max(np.abs(expected))
        assert np.allclose(num[3:-3], expected[3:-3], atol=0.03 * scale)

    def test_neutrino_continuity(self, sol):
        """delta_nu' = -(4/3) theta_nu - (2/3) h' (dense window)."""
        m, tau, r = sol
        sel = self._dense_window(m, tau)
        num = spline_derivative(tau[sel], r["delta_nu"][sel])
        expected = (-(4.0 / 3.0) * r["theta_nu"]
                    - (2.0 / 3.0) * r["hdot"])[sel]
        scale = np.max(np.abs(expected))
        assert np.allclose(num[3:-3], expected[3:-3], atol=0.03 * scale)


class TestEinsteinConstraint:
    def test_energy_constraint_rebuilt(self, sol, scdm):
        """h' = 2(k^2 eta + 4 pi G a^2 delta-rho)/H with delta-rho
        rebuilt from the recorded species perturbations."""
        m, tau, r = sol
        h0sq = scdm.h0_mpc**2
        a = r["a"]
        gdrho = 1.5 * h0sq * (
            (scdm.omega_c * r["delta_c"] + scdm.omega_b * r["delta_b"]) / a
            + (scdm.omega_gamma * r["delta_g"]
               + scdm.omega_nu_massless * r["delta_nu"]) / a**2
        )
        from repro.background import Background

        hc = Background(scdm).conformal_hubble(a)
        expected = 2.0 * (m.k**2 * r["eta"] + gdrho) / hc
        scale = np.max(np.abs(r["hdot"]))
        assert np.allclose(r["hdot"], expected, atol=1e-6 * scale)

    def test_momentum_constraint_rebuilt(self, sol, scdm):
        """eta' = 4 pi G a^2 (rho+p) theta / k^2, same rebuild."""
        m, tau, r = sol
        h0sq = scdm.h0_mpc**2
        a = r["a"]
        gdq = 1.5 * h0sq * (
            scdm.omega_b * r["theta_b"] / a
            + (4.0 / 3.0) * (scdm.omega_gamma * r["theta_g"]
                             + scdm.omega_nu_massless * r["theta_nu"]) / a**2
        )
        expected = gdq / m.k**2
        scale = np.max(np.abs(r["etadot"]))
        assert np.allclose(r["etadot"], expected, atol=1e-6 * scale)
