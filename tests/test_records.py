"""LINGER output records: the paper's wire formats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.linger import HEADER_LENGTH, ModeHeader, ModePayload


def make_header(**overrides) -> ModeHeader:
    base = dict(
        ik=3, k=0.05, tau_end=11838.0, a_end=1.0, delta_c=-100.0,
        delta_b=-95.0, delta_g=-0.5, delta_nu=-0.4, delta_nu_massive=0.0,
        theta_b=1.0, theta_g=1.1, theta_nu=0.9, eta=0.7, hdot=9.0,
        etadot=1e-4, phi=0.4, psi=0.39, delta_m=-99.0, cpu_seconds=1.5,
        n_rhs=12345.0, lmax=12,
    )
    base.update(overrides)
    return ModeHeader(**base)


class TestHeader:
    def test_wire_length_is_21(self):
        assert make_header().pack().shape == (HEADER_LENGTH,)

    def test_round_trip(self):
        h = make_header()
        h2 = ModeHeader.unpack(h.pack())
        assert h2 == h

    def test_integer_fields_survive(self):
        h2 = ModeHeader.unpack(make_header(ik=17, lmax=40).pack())
        assert h2.ik == 17 and isinstance(h2.ik, int)
        assert h2.lmax == 40 and isinstance(h2.lmax, int)

    def test_wrong_length_rejected(self):
        with pytest.raises(ProtocolError):
            ModeHeader.unpack(np.zeros(20))

    @given(ik=st.integers(1, 5000), lmax=st.integers(3, 10000),
           k=st.floats(1e-5, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, ik, lmax, k):
        h = make_header(ik=ik, lmax=lmax, k=k)
        h2 = ModeHeader.unpack(h.pack())
        assert h2.ik == ik and h2.lmax == lmax
        assert h2.k == pytest.approx(k)


class TestPayload:
    def make(self, lmax=12):
        rng = np.random.default_rng(lmax)
        return ModePayload(
            ik=2, k=0.01, tau_end=11838.0, a_end=1.0, amplitude=1.0,
            n_steps=2000.0, f_gamma=rng.normal(size=lmax + 1),
            g_gamma=rng.normal(size=lmax + 1),
        )

    def test_wire_length_matches_paper(self):
        # length = 2 lmax + 8, exactly as in the paper's tag-5 message
        for lmax in (3, 12, 100):
            p = self.make(lmax)
            assert p.pack().size == 2 * lmax + 8 == p.wire_length

    def test_round_trip(self):
        p = self.make(20)
        p2 = ModePayload.unpack(p.pack(), lmax=20)
        assert np.allclose(p2.f_gamma, p.f_gamma)
        assert np.allclose(p2.g_gamma, p.g_gamma)
        assert p2.ik == p.ik

    def test_wrong_lmax_rejected(self):
        p = self.make(12)
        with pytest.raises(ProtocolError):
            ModePayload.unpack(p.pack(), lmax=13)

    def test_mismatched_hierarchies_rejected(self):
        with pytest.raises(ProtocolError):
            ModePayload(ik=1, k=0.1, tau_end=1.0, a_end=1.0, amplitude=1.0,
                        n_steps=1.0, f_gamma=np.zeros(5), g_gamma=np.zeros(6))

    def test_message_bytes_growth(self):
        """Message size grows with lmax: the Section 4 economics."""
        small = self.make(8).pack().nbytes
        big = self.make(5000).pack().nbytes
        assert small < 250
        assert 75_000 < big < 85_000
