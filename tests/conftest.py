"""Shared fixtures.

The expensive objects (background, thermal history, evolved modes, a
small LINGER run) are session-scoped: built once, shared by every test
that needs real physics.  Numerical settings are chosen so the whole
suite stays fast while still exercising the production code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Background,
    KGrid,
    LingerConfig,
    ThermalHistory,
    mixed_dark_matter,
    run_linger,
    standard_cdm,
)
from repro.perturbations import default_record_grid, evolve_mode


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite tests/data/golden_*.json from the current code "
             "instead of comparing against them",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "golden: golden-regression guardrail — physics outputs must match "
        "the frozen tests/data/golden_*.json files to rtol=1e-8",
    )
    config.addinivalue_line(
        "markers",
        "property: hypothesis property tests — randomized structural "
        "invariants (no physics integration); deselect with "
        "-m 'not property'",
    )


@pytest.fixture(scope="session")
def regen_golden(request):
    return request.config.getoption("--regen-golden")


@pytest.fixture(scope="session")
def scdm():
    return standard_cdm()


@pytest.fixture(scope="session")
def bg_scdm(scdm):
    return Background(scdm)


@pytest.fixture(scope="session")
def thermo_scdm(bg_scdm):
    return ThermalHistory(bg_scdm)


@pytest.fixture(scope="session")
def mdm():
    return mixed_dark_matter(omega_nu=0.2)


@pytest.fixture(scope="session")
def bg_mdm(mdm):
    return Background(mdm)


@pytest.fixture(scope="session")
def thermo_mdm(bg_mdm):
    return ThermalHistory(bg_mdm)


@pytest.fixture(scope="session")
def mode_k005(bg_scdm, thermo_scdm):
    """A large-scale mode (k = 0.005/Mpc) with recorded sources."""
    grid = default_record_grid(bg_scdm, thermo_scdm, 0.005)
    return evolve_mode(bg_scdm, thermo_scdm, 0.005, record_tau=grid,
                       rtol=1e-5)


@pytest.fixture(scope="session")
def mode_k05(bg_scdm, thermo_scdm):
    """An acoustic-scale mode (k = 0.05/Mpc) with recorded sources."""
    grid = default_record_grid(bg_scdm, thermo_scdm, 0.05)
    return evolve_mode(bg_scdm, thermo_scdm, 0.05, record_tau=grid,
                       rtol=1e-5)


@pytest.fixture(scope="session")
def mode_mdm(bg_mdm, thermo_mdm):
    """A mode with massive neutrinos on an 8-node momentum grid."""
    grid = default_record_grid(bg_mdm, thermo_mdm, 0.05)
    return evolve_mode(bg_mdm, thermo_mdm, 0.05, nq=8, lmax_massive_nu=6,
                       record_tau=grid, rtol=1e-4)


@pytest.fixture(scope="session")
def linger_small(scdm, bg_scdm, thermo_scdm):
    """A small but complete LINGER run with sources, for spectra tests."""
    kg = KGrid.from_k(np.geomspace(3e-4, 0.03, 8))
    cfg = LingerConfig(lmax_photon=24, lmax_nu=12, rtol=1e-4)
    return run_linger(scdm, kg, cfg, background=bg_scdm, thermo=thermo_scdm)
