"""The command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import MODELS, build_parser, main
from repro.telemetry import RunReport


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_registered(self):
        assert set(MODELS) == {"scdm", "tilted", "lcdm", "mdm"}

    def test_run_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_scaling_defaults(self):
        args = build_parser().parse_args(["scaling"])
        assert args.machine == "IBM SP2"
        assert 64 in args.nodes


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--model", "scdm"]) == 0
        out = capsys.readouterr().out
        assert "z recombination" in out
        assert "conformal age" in out

    def test_scaling(self, capsys):
        assert main(["scaling", "--nk", "100", "--nodes", "4", "16"]) == 0
        out = capsys.readouterr().out
        assert "efficiency" in out
        assert "Gflop/s" in out

    def test_run_and_spectrum_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "run.npz"
        assert main([
            "run", "--nk", "6", "--k-min", "3e-5", "--k-max", "1e-3",
            "--lmax", "12", "--rtol", "3e-4", "--output", str(out_file),
        ]) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["spectrum", str(out_file), "--l-max", "6"]) == 0
        out = capsys.readouterr().out
        assert "delta-T_l" in out
        # the quadrupole line carries the COBE normalization
        assert "27.89" in out

    def test_sparse_run_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "coarse.npz"
        report_file = tmp_path / "rep.json"
        assert main([
            "run", "--nk", "9", "--k-min", "1e-3", "--k-max", "1e-2",
            "--lmax", "8", "--rtol", "3e-4", "--sparse-k-factor", "4",
            "--report", str(report_file), "--output", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "sparse-k: integrated 3 of 9 modes" in out
        assert out_file.exists()
        report = RunReport.from_dict(json.loads(report_file.read_text()))
        assert report.sparse is not None
        assert report.sparse.sparse_factor == 4
        assert report.totals["sparse_mode_reduction"] == 3.0
        assert report.meta["sparse_k_factor"] == 4

    def test_sparse_rejects_forked_backend(self, tmp_path, capsys):
        """The fast path needs the coarse mode results in master
        memory: forked workers must be refused cleanly, not crash."""
        rc = main([
            "run", "--nk", "9", "--k-min", "1e-3", "--k-max", "1e-2",
            "--lmax", "8", "--rtol", "3e-4", "--sparse-k-factor", "3",
            "--parallel", "3", "--backend", "procs",
            "--output", str(tmp_path / "x.npz"),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--backend inprocess" in err

    def test_run_with_telemetry_report(self, tmp_path, capsys):
        """`run --report` on a 4-mode parallel run emits a RunReport
        with per-mode integrator metrics, per-tag message counts and
        worker idle time (the acceptance-criteria invocation)."""
        out_file = tmp_path / "run.npz"
        report_file = tmp_path / "report.json"
        assert main([
            "run", "--nk", "4", "--k-min", "1e-3", "--k-max", "1e-2",
            "--lmax", "8", "--rtol", "3e-4", "--parallel", "3",
            "--backend", "inprocess", "--report", str(report_file),
            "--output", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry report written" in out
        assert "RHS evaluations" in out
        assert "messages WORK" in out

        report = RunReport.load(report_file)
        d = json.loads(report_file.read_text())
        assert d["schema"] == "repro.telemetry.RunReport/v1"
        # per-mode integrator metrics, one per wavenumber
        assert len(report.modes) == 4
        assert sorted(m.ik for m in report.modes) == [1, 2, 3, 4]
        assert all(m.n_rhs > 0 and m.n_steps > 0 for m in report.modes)
        assert all(m.flops_est > 0 for m in report.modes)
        # per-tag message counts for master + both workers
        totals = report.totals
        tags = totals["messages_sent_by_tag"]
        assert tags["WORK"]["count"] == 4
        assert tags["HEADER"]["count"] == 4
        assert {t.role for t in report.traffic} == {"master", "worker"}
        # worker utilization / idle accounting
        assert len(report.workers) == 2
        assert totals["worker_busy_seconds"] > 0
        assert all(w.idle_seconds >= 0 for w in report.workers)

    def test_run_serial_report(self, tmp_path, capsys):
        """`run --report` without --parallel: serial LINGER telemetry."""
        out_file = tmp_path / "run.npz"
        report_file = tmp_path / "report.json"
        assert main([
            "run", "--nk", "3", "--k-min", "1e-3", "--k-max", "5e-3",
            "--lmax", "8", "--rtol", "3e-4",
            "--report", str(report_file), "--output", str(out_file),
        ]) == 0
        report = RunReport.load(report_file)
        assert report.meta["driver"] == "linger-serial"
        assert len(report.modes) == 3
        assert not report.traffic and not report.workers
        assert report.timers["linger.wall"]["total_seconds"] > 0
