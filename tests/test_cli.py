"""The command-line interface."""

import numpy as np
import pytest

from repro.cli import MODELS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_registered(self):
        assert set(MODELS) == {"scdm", "tilted", "lcdm", "mdm"}

    def test_run_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_scaling_defaults(self):
        args = build_parser().parse_args(["scaling"])
        assert args.machine == "IBM SP2"
        assert 64 in args.nodes


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--model", "scdm"]) == 0
        out = capsys.readouterr().out
        assert "z recombination" in out
        assert "conformal age" in out

    def test_scaling(self, capsys):
        assert main(["scaling", "--nk", "100", "--nodes", "4", "16"]) == 0
        out = capsys.readouterr().out
        assert "efficiency" in out
        assert "Gflop/s" in out

    def test_run_and_spectrum_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "run.npz"
        assert main([
            "run", "--nk", "6", "--k-min", "3e-5", "--k-max", "1e-3",
            "--lmax", "12", "--rtol", "3e-4", "--output", str(out_file),
        ]) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["spectrum", str(out_file), "--l-max", "6"]) == 0
        out = capsys.readouterr().out
        assert "delta-T_l" in out
        # the quadrupole line carries the COBE normalization
        assert "27.89" in out
