"""Message-accounting conservation laws.

Every protocol message a worker sends is received by the master (and
vice versa), so the per-tag counters kept by :class:`TrafficStats` on
each side must balance exactly.  This is checked as a property over
grid size and worker count on the in-process backend, once on the
forked-process backend (where the worker-side counters travel home over
the out-of-band telemetry channel), and under fault injection — where a
duplicated delivery (the transport-level picture of a retry) must show
up in the books as exactly one surplus message, never silently vanish.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import KGrid
from repro.mp.backends.faulty import FaultPolicy, FaultyWorld
from repro.mp.backends.inprocess import InProcessWorld
from repro.mp.backends.procs import ProcsWorld
from repro.plinger import Tag, master_subroutine, worker_subroutine
from tests.test_plinger import fake_compute

ALL_TAGS = [int(t) for t in Tag]


def _counts(traffic: dict, direction: str) -> dict[int, int]:
    """{tag: count} from a TrafficStats.as_dict() section."""
    return {int(t): v["count"] for t, v in traffic[direction].items()}


def _bytes(traffic: dict, direction: str) -> dict[int, int]:
    return {int(t): v["bytes"] for t, v in traffic[direction].items()}


def _sum_over_workers(blobs: dict, direction: str) -> dict[int, int]:
    total: dict[int, int] = {}
    for payload in blobs.values():
        for tag, n in _counts(payload["traffic"], direction).items():
            total[tag] = total.get(tag, 0) + n
    return total


def _run_exchange(world, nk: int):
    """Drive the PLINGER protocol with fake work over ``world`` using
    threads; workers publish their traffic counters out of band."""
    kgrid = KGrid.from_k(0.01 * np.arange(1, nk + 1))

    def worker(rank):
        mp = world.handle(rank)
        mp.initpass()
        try:
            worker_subroutine(mp, lambda ik: fake_compute(ik))
        finally:
            mp.publish_telemetry({"traffic": mp.stats.as_dict()})
            mp.endpass()

    threads = [threading.Thread(target=worker, args=(r,), daemon=True)
               for r in range(1, world.nproc)]
    for t in threads:
        t.start()
    mp0 = world.handle(0)
    mp0.initpass()
    log = master_subroutine(mp0, kgrid)
    for t in threads:
        t.join(20.0)
        assert not t.is_alive()
    return mp0.stats.as_dict(), world.collect_telemetry(), log


class TestInProcessConservation:
    @settings(max_examples=10, deadline=None)
    @given(nk=st.integers(1, 8), nworkers=st.integers(1, 3))
    def test_per_tag_counts_balance(self, nk, nworkers):
        world = InProcessWorld(nworkers + 1)
        master, blobs, _ = _run_exchange(world, nk)

        assert set(blobs) == set(range(1, nworkers + 1))
        # what the master received is exactly what the workers sent ...
        assert _counts(master, "received_by_tag") == \
            _sum_over_workers(blobs, "sent_by_tag")
        # ... and what the workers received is what the master sent
        assert _counts(master, "sent_by_tag") == \
            _sum_over_workers(blobs, "received_by_tag")
        # nothing in flight at exit
        assert all(not box for box in world._mailboxes)

    @settings(max_examples=10, deadline=None)
    @given(nk=st.integers(1, 8), nworkers=st.integers(1, 3))
    def test_bytes_balance_and_protocol_shape(self, nk, nworkers):
        world = InProcessWorld(nworkers + 1)
        master, blobs, _ = _run_exchange(world, nk)

        assert _bytes(master, "received_by_tag") == {
            tag: sum(_bytes(p["traffic"], "sent_by_tag").get(tag, 0)
                     for p in blobs.values())
            for tag in _bytes(master, "received_by_tag")
        }
        recv = _counts(master, "received_by_tag")
        sent = _counts(master, "sent_by_tag")
        assert recv[Tag.READY] == nworkers
        assert recv[Tag.HEADER] == recv[Tag.PAYLOAD] == nk
        assert sent[Tag.INIT] == nworkers
        assert sent[Tag.WORK] == nk
        assert sent[Tag.STOP] == nworkers


class TestProcsConservation:
    def test_per_tag_counts_balance_across_fork(self):
        """Same law when workers are forked processes: their counters
        ride the telemetry side channel, which itself must not appear
        in any traffic count."""
        nk, nproc = 5, 3
        world = ProcsWorld(nproc, timeout=60.0)
        kgrid = KGrid.from_k(0.01 * np.arange(1, nk + 1))
        world.launch(_procs_worker_entry)
        mp0 = world.handle(0)
        mp0.initpass()
        master_subroutine(mp0, kgrid)
        world.join(60.0)
        blobs = world.collect_telemetry()
        master = mp0.stats.as_dict()

        assert set(blobs) == {1, 2}
        assert _counts(master, "received_by_tag") == \
            _sum_over_workers(blobs, "sent_by_tag")
        assert _counts(master, "sent_by_tag") == \
            _sum_over_workers(blobs, "received_by_tag")
        # the side channel added nothing to the protocol totals
        assert master["messages_sent"] == (nproc - 1) + nk + (nproc - 1)
        assert master["messages_received"] == (nproc - 1) + 2 * nk


class TestFaultyConservation:
    """A duplicated delivery (a transport retry) keeps the books exact:
    the surplus message appears on the receive side or as a pending
    leftover, and its count equals ``faults_injected`` — it can never
    disappear from the accounting."""

    @settings(max_examples=6, deadline=None)
    @given(nk=st.integers(1, 6))
    def test_duplicated_ready_is_fully_accounted(self, nk):
        inner = InProcessWorld(2)
        world = FaultyWorld(inner, FaultPolicy(
            selector=lambda m, c: m.tag == Tag.READY, action="duplicate"))
        master, blobs, log = _run_exchange(world, nk)

        assert world.faults_injected == 1
        assert world.faults_by_tag == {int(Tag.READY): 1}
        w_sent = _counts(blobs[1]["traffic"], "sent_by_tag")
        w_recv = _counts(blobs[1]["traffic"], "received_by_tag")
        m_sent = _counts(master, "sent_by_tag")
        m_recv = _counts(master, "received_by_tag")

        # the worker sent one READY; the master consumed both copies
        assert w_sent[Tag.READY] == 1
        assert m_recv[Tag.READY] == w_sent[Tag.READY] + 1
        # results are untouched by the fault
        assert m_recv[Tag.HEADER] == w_sent[Tag.HEADER] == nk
        assert m_recv[Tag.PAYLOAD] == w_sent[Tag.PAYLOAD] == nk
        # the extra READY earned the master one extra reply; the worker
        # had already stopped, so it sits unconsumed in its mailbox
        assert m_sent[Tag.WORK] == w_recv[Tag.WORK] == nk
        assert m_sent[Tag.STOP] == w_recv[Tag.STOP] + 1
        leftover = [m.tag for m in inner._mailboxes[1]]
        assert leftover == [Tag.STOP]
        # all modes still computed exactly once
        assert sorted(h.ik for h in log.headers) == list(range(1, nk + 1))


def _procs_worker_entry(mp):
    mp.initpass()
    worker_subroutine(mp, lambda ik: fake_compute(ik))
    mp.publish_telemetry({"traffic": mp.stats.as_dict()})
    mp.endpass()
