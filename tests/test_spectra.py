"""Spectra: C_l (two routes), normalization, matter power."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.spectra import (
    BesselCache,
    SourceTable,
    band_power_uk,
    cl_from_hierarchy,
    cl_from_los,
    cl_integrate_over_k,
    cobe_normalization,
    matter_power,
    qrms_ps_from_cl,
    sigma_r,
    transfer_function,
)


class TestKQuadrature:
    def test_flat_transfer_analytic(self):
        # Theta_l(k) = 1, n_s = 1: C_l = 4 pi ln(kmax/kmin)
        k = np.geomspace(0.01, 0.1, 200)
        cl = cl_integrate_over_k(k, np.ones_like(k))
        assert cl == pytest.approx(4 * np.pi * np.log(10.0), rel=1e-4)

    def test_tilt_changes_weighting(self):
        k = np.geomspace(0.01, 0.1, 100)
        th = np.ones_like(k)
        blue = cl_integrate_over_k(k, th, n_s=1.2, k_pivot=0.01)
        red = cl_integrate_over_k(k, th, n_s=0.8, k_pivot=0.01)
        assert blue > red

    def test_matrix_form(self):
        k = np.geomspace(0.01, 0.1, 50)
        th = np.stack([np.ones_like(k), 2 * np.ones_like(k)], axis=1)
        cl = cl_integrate_over_k(k, th)
        assert cl.shape == (2,)
        assert cl[1] == pytest.approx(4 * cl[0])

    def test_single_point_rejected(self):
        with pytest.raises(ParameterError):
            cl_integrate_over_k(np.array([0.1]), np.array([1.0]))


class TestHierarchyCl:
    def test_positive_spectrum(self, linger_small):
        l, cl = cl_from_hierarchy(linger_small)
        assert np.all(cl > 0)
        assert l[0] == 2

    def test_truncation_margin_enforced(self, linger_small):
        lmax = linger_small.config.lmax_photon
        with pytest.raises(ParameterError):
            cl_from_hierarchy(linger_small, l_values=np.array([lmax]))

    def test_requested_l_subset(self, linger_small):
        l, cl = cl_from_hierarchy(linger_small, l_values=np.array([2, 5, 9]))
        assert list(l) == [2, 5, 9]
        assert cl.shape == (3,)


class TestLosAgainstHierarchy:
    def test_consistency_low_l(self, linger_small):
        """The paper's direct method and the line-of-sight projection
        must agree; this is the strongest internal check of the whole
        Boltzmann pipeline (sources, gauge terms, visibility)."""
        l = np.arange(2, 16)
        _, cl_h = cl_from_hierarchy(linger_small, l_values=l)
        _, cl_s = cl_from_los(linger_small, l)
        ratio = cl_s / cl_h
        assert np.all(np.abs(ratio - 1.0) < 0.05)

    def test_source_table_shape(self, linger_small, mode_k05):
        tau0 = linger_small.background.tau0
        src = SourceTable.from_mode(mode_k05, linger_small.thermo, tau0)
        assert src.tau.shape == src.source.shape
        t, s = src.dense()
        assert t[0] == pytest.approx(src.tau[0])
        assert t[-1] == pytest.approx(tau0)

    def test_source_localized_at_recombination(self, linger_small,
                                               mode_k05):
        """|S| peaks near the visibility peak; the late-time ISW tail is
        comparatively small for standard CDM."""
        thermo = linger_small.thermo
        src = SourceTable.from_mode(mode_k05, thermo,
                                    linger_small.background.tau0)
        peak_region = np.abs(src.tau - thermo.tau_rec) < 150
        peak = np.max(np.abs(src.source[peak_region]))
        late = np.max(np.abs(src.source[src.tau > 2000]))
        assert late < 0.2 * peak


class TestBesselCache:
    def test_matches_scipy(self):
        from scipy.special import spherical_jn

        cache = BesselCache(x_max=50.0, dx=0.05)
        x = np.linspace(0.0, 49.0, 500)
        for l in (2, 10, 31):
            approx = cache.eval(l, x)
            exact = spherical_jn(l, x)
            assert np.max(np.abs(approx - exact)) < 2e-4

    def test_tables_cached(self):
        cache = BesselCache(10.0)
        t1 = cache.table(5)
        t2 = cache.table(5)
        assert t1 is t2


class TestNormalization:
    def test_cobe_fixes_quadrupole(self):
        l = np.arange(2, 20)
        cl = 1.0 / (l * (l + 1.0))
        f = cobe_normalization(l, cl, q_rms_ps_uk=18.0, t_cmb_k=2.726)
        c2 = cl[0] * f
        q = 2.726e6 * np.sqrt(5 * c2 / (4 * np.pi))
        assert q == pytest.approx(18.0, rel=1e-10)

    def test_qrms_round_trip(self):
        l = np.arange(2, 30)
        cl = 1.0 / (l * (l + 1.0))
        f = cobe_normalization(l, cl, 20.0)
        assert qrms_ps_from_cl(l, cl * f) == pytest.approx(20.0, rel=1e-10)

    def test_band_power_flat_spectrum(self):
        # l(l+1)C_l = const -> flat band power
        l = np.arange(2, 100)
        cl = 1.0 / (l * (l + 1.0))
        bp = band_power_uk(l, cl)
        assert np.allclose(bp, bp[0], rtol=1e-12)

    def test_missing_quadrupole_rejected(self):
        with pytest.raises(ParameterError):
            cobe_normalization(np.arange(5, 10), np.ones(5))

    def test_scdm_band_power_level(self, linger_small):
        """COBE-normalized standard CDM sits near ~28 uK at low l
        (the Sachs-Wolfe plateau, Q = 18 uK)."""
        l, cl = cl_from_hierarchy(linger_small, l_values=np.arange(2, 10))
        cl = cl * cobe_normalization(l, cl)
        bp = band_power_uk(l, cl)
        assert 20 < bp[0] < 40


class TestMatterPower:
    def test_large_scale_slope(self, linger_small):
        """P(k) ~ k^(n_s) on super-horizon scales."""
        k = linger_small.k[:4]
        pk = matter_power(k, linger_small.delta_m[:4],
                          n_s=linger_small.params.n_s)
        slope = np.polyfit(np.log(k), np.log(pk), 1)[0]
        assert slope == pytest.approx(1.0, abs=0.1)

    def test_transfer_function_normalized(self, linger_small):
        t = transfer_function(linger_small.k, linger_small.delta_m)
        assert t[0] == pytest.approx(1.0)
        assert np.all(t > 0)

    def test_transfer_suppressed_small_scales(self, linger_small):
        t = transfer_function(linger_small.k, linger_small.delta_m)
        assert t[-1] < t[0]

    def test_sigma_r_positive(self, linger_small):
        pk = matter_power(linger_small.k, linger_small.delta_m)
        assert sigma_r(linger_small.k, pk, 16.0) > 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            matter_power(np.ones(3), np.ones(4))
