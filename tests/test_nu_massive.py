"""Massive-neutrino phase-space integrals."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.background.nu_massive import (
    I_RHO_MASSLESS,
    MassiveNuTables,
    dlnf0_dlnq,
    fermi_dirac_f0,
    momentum_grid,
    pressure_integral,
    rho_integral,
    solve_mass_parameter,
)


class TestDistribution:
    def test_f0_at_zero(self):
        assert float(fermi_dirac_f0(0.0)) == pytest.approx(0.5)

    def test_f0_decreasing(self):
        q = np.linspace(0, 20, 100)
        assert np.all(np.diff(fermi_dirac_f0(q)) < 0)

    def test_dlnf0_matches_numeric(self):
        q = np.array([0.5, 1.0, 3.0, 8.0])
        eps = 1e-6
        num = (
            np.log(fermi_dirac_f0(q * (1 + eps)))
            - np.log(fermi_dirac_f0(q * (1 - eps)))
        ) / (2 * eps)
        assert np.allclose(dlnf0_dlnq(q), num, rtol=1e-5)

    def test_no_overflow_at_huge_q(self):
        assert float(fermi_dirac_f0(1e4)) < 1e-300
        assert np.isfinite(dlnf0_dlnq(1e4))


class TestQuadrature:
    def test_massless_integral_analytic(self):
        # integral q^3/(e^q+1) dq = 7 pi^4/120
        q, w = momentum_grid(64, q_max=25.0)
        val = np.sum(w * q**3 * fermi_dirac_f0(q))
        assert val == pytest.approx(7 * math.pi**4 / 120, rel=1e-7)

    def test_number_density_integral(self):
        # integral q^2/(e^q+1) dq = (3/2) zeta(3)
        q, w = momentum_grid(64, q_max=25.0)
        val = np.sum(w * q**2 * fermi_dirac_f0(q))
        assert val == pytest.approx(1.5 * 1.2020569, rel=1e-7)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            momentum_grid(1)


class TestIntegrals:
    def test_rho_massless_limit(self):
        assert float(rho_integral(0.0)) == pytest.approx(
            I_RHO_MASSLESS, rel=1e-6
        )

    def test_pressure_massless_limit(self):
        # relativistic: p = rho/3 -> I_p(0) = I_rho(0)/3
        assert float(pressure_integral(0.0)) == pytest.approx(
            I_RHO_MASSLESS / 3.0, rel=1e-6
        )

    def test_rho_nonrelativistic_limit(self):
        # I_rho(x) -> x * (3/2) zeta(3) for x >> 1 (rest mass x number)
        x = 1e4
        assert float(rho_integral(x)) == pytest.approx(
            x * 1.5 * 1.2020569, rel=1e-3
        )

    def test_pressure_suppressed_nonrelativistic(self):
        x = 1e4
        assert float(pressure_integral(x)) < 0.01 * float(rho_integral(x))

    @given(x=st.floats(1e-3, 1e5))
    @settings(max_examples=30, deadline=None)
    def test_rho_exceeds_massless(self, x):
        # mass only adds energy
        assert float(rho_integral(x)) >= I_RHO_MASSLESS * 0.999999


class TestMassParameter:
    def test_round_trip(self):
        omega_rel = 1e-5
        omega_nu = 0.1
        x0 = solve_mass_parameter(omega_nu, omega_rel)
        got = omega_rel * float(rho_integral(x0)) / I_RHO_MASSLESS
        assert got == pytest.approx(omega_nu, rel=1e-6)

    def test_zero_omega(self):
        assert solve_mass_parameter(0.0, 1e-5) == 0.0

    def test_too_small_omega_rejected(self):
        with pytest.raises(ValueError):
            solve_mass_parameter(1e-7, 1e-5)


class TestTables:
    def test_table_matches_direct(self):
        tab = MassiveNuTables.build(x0=100.0)
        for a in (1e-6, 1e-3, 0.1, 1.0):
            direct = float(rho_integral(a * 100.0)) / I_RHO_MASSLESS
            assert tab.rho_factor(a) == pytest.approx(direct, rel=1e-5)

    def test_pressure_table_matches_direct(self):
        tab = MassiveNuTables.build(x0=100.0)
        for a in (1e-5, 1e-2, 1.0):
            direct = 3.0 * float(pressure_integral(a * 100.0)) / I_RHO_MASSLESS
            assert tab.pressure_factor(a) == pytest.approx(direct, rel=1e-5)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            MassiveNuTables.build(0.0)
