"""Machine models, the cost model, and the schedule simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    CRAY_C90,
    CRAY_T3D,
    DEC_ALPHA_CLUSTER,
    IBM_SP2,
    IBM_SP2_TUNED,
    MACHINES,
    calibrated_cost_model,
    paper_cost_model,
    scaling_study,
    simulate_schedule,
)
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def cm():
    return paper_cost_model()


@pytest.fixture(scope="module")
def production_grid(cm):
    k_big = (cm.lmax_cap - cm.lmax_floor) / cm.lmax_per_ktau / cm.tau0
    return np.linspace(1e-4, k_big, 5000)


class TestMachines:
    def test_paper_sustained_rates(self):
        assert CRAY_C90.mflop_per_node == 570.0
        assert IBM_SP2.mflop_per_node == 40.0
        assert IBM_SP2_TUNED.mflop_per_node == 58.0
        assert CRAY_T3D.mflop_per_node == 15.0

    def test_paper_efficiency_fractions(self):
        # "a significant fraction" (57%), "a seventh" (15%), "a tenth"
        assert CRAY_C90.efficiency_vs_peak == pytest.approx(0.57)
        assert IBM_SP2.efficiency_vs_peak == pytest.approx(1 / 7, abs=0.01)
        assert CRAY_T3D.efficiency_vs_peak == pytest.approx(0.10)

    def test_t3d_master_on_front_end(self):
        assert not CRAY_T3D.master_cohabits
        assert IBM_SP2.master_cohabits

    def test_registry(self):
        assert "IBM SP2" in MACHINES
        assert len(MACHINES) == 5

    def test_message_time_positive(self):
        for m in MACHINES.values():
            assert m.message_seconds(80_000) > m.latency_s


class TestPaperCostModel:
    def test_smallest_k_anchor(self, cm):
        """Paper: the smallest k needs at least two CPU-minutes on a
        Power 2 chip."""
        minutes = cm.work_seconds(1e-4, IBM_SP2.mflop_per_node) / 60.0
        assert minutes == pytest.approx(2.0, rel=0.05)

    def test_largest_k_anchor(self, cm, production_grid):
        """Paper: the largest k can take up to half an hour."""
        minutes = cm.work_seconds(production_grid[-1],
                                  IBM_SP2.mflop_per_node) / 60.0
        assert minutes == pytest.approx(30.0, rel=0.05)

    def test_message_size_range(self, cm, production_grid):
        """Paper: results messages run from ~150 bytes to ~80 kB."""
        assert cm.message_bytes(production_grid[0]) < 500
        assert cm.message_bytes(production_grid[-1]) == pytest.approx(
            80_000, rel=0.01
        )

    def test_message_size_tracks_cpu(self, cm, production_grid):
        """Paper: message length grows roughly in proportion to CPU.

        Both quantities have floors (minimum step count, fixed header),
        so the proportionality holds once the mode is past them.
        """
        k = production_grid[production_grid * cm.tau0 > 500]
        k = k[cm.lmax(k) < cm.lmax_cap]  # below the moment cap
        ratio = cm.message_bytes(k) / cm.flops(k)
        assert ratio.max() / ratio.min() < 2.5

    def test_production_run_total(self, cm, production_grid):
        """Paper: a full run is roughly 75 C90 CPU-hours."""
        hours = np.sum(
            cm.work_seconds(production_grid, CRAY_C90.mflop_per_node)
        ) / 3600.0
        assert hours == pytest.approx(75.0, rel=0.1)

    def test_cost_monotone_in_k(self, cm):
        k = np.linspace(1e-4, 0.5, 100)
        assert np.all(np.diff(cm.flops(k)) > 0)


class TestCalibratedCostModel:
    def test_fits_measured_steps(self, bg_scdm, thermo_scdm):
        cm = calibrated_cost_model(bg_scdm, thermo_scdm,
                                   k_samples=(0.005, 0.05), rtol=1e-4)
        assert cm.steps_floor >= 1.0
        assert cm.steps_per_ktau >= 0.0
        # sanity: a mid-range mode costs a finite positive amount
        assert cm.flops(0.02) > 0

    def test_needs_two_samples(self, bg_scdm, thermo_scdm):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            calibrated_cost_model(bg_scdm, thermo_scdm, k_samples=(0.01,))


class TestScheduler:
    def test_single_worker_serializes(self, cm):
        ks = np.linspace(1e-4, 0.3, 40)[::-1]
        r = simulate_schedule(ks, IBM_SP2, cm, 1)
        assert r.wallclock_s == pytest.approx(r.cpu_total_s, rel=1e-3)
        assert r.efficiency == pytest.approx(1.0, rel=1e-3)

    def test_cpu_independent_of_node_count(self, cm):
        """Paper §5.2: 'the CPU time does not change as the number of
        processors is increased'."""
        ks = np.linspace(1e-4, 0.3, 200)[::-1]
        cpus = [simulate_schedule(ks, IBM_SP2, cm, n).cpu_total_s
                for n in (1, 8, 64)]
        assert max(cpus) / min(cpus) < 1.0001

    def test_efficiency_95_percent_at_64(self, cm):
        """Paper §5.2: parallel efficiency ~95% on 64 nodes for a test
        run."""
        ks = np.sort(np.linspace(1e-4, 0.3, 500))[::-1]
        r = simulate_schedule(ks, IBM_SP2, cm, 64)
        assert r.efficiency > 0.93

    def test_largest_first_beats_smallest_first(self, cm):
        """Paper §5.2: computing the largest k first minimizes end-of-
        run idle time."""
        ks = np.sort(np.linspace(1e-4, 0.3, 300))
        eff_sf = simulate_schedule(ks, IBM_SP2, cm, 64).efficiency
        eff_lf = simulate_schedule(ks[::-1], IBM_SP2, cm, 64).efficiency
        assert eff_lf > eff_sf

    def test_longer_runs_less_idle(self, cm):
        """Paper §5.2: 'For production runs ... this idle time will be
        less significant.'"""
        short = np.sort(np.linspace(1e-4, 0.3, 200))[::-1]
        long = np.sort(np.linspace(1e-4, 0.3, 2000))[::-1]
        eff_short = simulate_schedule(short, IBM_SP2, cm, 128).efficiency
        eff_long = simulate_schedule(long, IBM_SP2, cm, 128).efficiency
        assert eff_long > eff_short

    def test_master_cpu_negligible(self, cm):
        ks = np.linspace(1e-4, 0.3, 500)[::-1]
        r = simulate_schedule(ks, IBM_SP2, cm, 64)
        assert r.master_cpu_s < 1e-3 * r.wallclock_s

    def test_too_many_nodes_rejected(self, cm):
        with pytest.raises(ScheduleError):
            simulate_schedule(np.array([0.01]), CRAY_T3D, cm, 512)

    def test_empty_work_rejected(self, cm):
        with pytest.raises(ScheduleError):
            simulate_schedule(np.array([]), IBM_SP2, cm, 4)

    @given(n=st.integers(1, 200))
    @settings(max_examples=20, deadline=None)
    def test_wallclock_bounds(self, cm, n):
        """max(item) <= wall <= cpu/n + max(item) + comm slop."""
        ks = np.linspace(1e-3, 0.3, 123)[::-1]
        r = simulate_schedule(ks, IBM_SP2, cm, n)
        per_item = cm.work_seconds(ks, IBM_SP2.mflop_per_node)
        assert r.wallclock_s >= per_item.max() * 0.999
        assert r.wallclock_s <= r.cpu_total_s / n + per_item.max() + 1.0


class TestPaperHeadlines:
    """Section 5.1's Gflop table, emergent from model + schedule."""

    def test_sp2_64_nodes(self, cm, production_grid):
        r = simulate_schedule(production_grid[::-1], IBM_SP2, cm, 64)
        assert r.gflops_sustained == pytest.approx(2.4, rel=0.15)

    def test_sp2_256_nodes(self, cm, production_grid):
        r = simulate_schedule(production_grid[::-1], IBM_SP2, cm, 256)
        assert r.gflops_sustained == pytest.approx(9.6, rel=0.15)

    def test_sp2_tuned_256_nodes(self, cm, production_grid):
        r = simulate_schedule(production_grid[::-1], IBM_SP2_TUNED, cm, 256)
        assert r.gflops_sustained == pytest.approx(15.0, rel=0.15)

    def test_t3d_256_nodes(self, cm, production_grid):
        r = simulate_schedule(production_grid[::-1], CRAY_T3D, cm, 256)
        assert r.gflops_sustained == pytest.approx(3.7, rel=0.15)

    def test_scaling_study_respects_machine_size(self, cm):
        ks = np.linspace(1e-4, 0.3, 50)[::-1]
        res = scaling_study(ks, CRAY_T3D, cm,
                            node_counts=(64, 256, 512))
        assert [r.n_workers for r in res] == [64, 256]

    def test_alpha_cluster_supported(self, cm):
        ks = np.linspace(1e-4, 0.3, 50)[::-1]
        r = simulate_schedule(ks, DEC_ALPHA_CLUSTER, cm, 8)
        assert r.efficiency > 0.5
