"""FRW background: Friedmann closure, limits, conformal time."""

import numpy as np
import pytest

from repro import Background, ParameterError
from repro.params import lambda_cdm, standard_cdm


class TestFriedmannClosure:
    def test_hubble_today_equals_h0(self, bg_scdm, scdm):
        assert float(bg_scdm.hubble(1.0)) == pytest.approx(
            scdm.h0_mpc, rel=1e-3
        )

    def test_grho_today(self, bg_scdm, scdm):
        # flat model: (8 pi G/3) rho0 = H0^2 (1 - Omega_k)
        assert float(bg_scdm.grho(1.0)) == pytest.approx(
            scdm.h0_mpc**2 * (1 - scdm.omega_k), rel=1e-12
        )

    def test_components_sum_to_total(self, bg_scdm):
        a = np.array([1e-6, 1e-3, 0.1, 1.0])
        comps = bg_scdm.grho_components(a)
        assert np.allclose(sum(comps.values()), bg_scdm.grho(a))


class TestLimits:
    def test_radiation_era_scaling(self, bg_scdm, scdm):
        # H_conf * a -> const = H0 sqrt(Omega_r) as a -> 0
        a = np.array([1e-8, 1e-7])
        prod = bg_scdm.conformal_hubble(a) * a
        assert prod[0] == pytest.approx(prod[1], rel=1e-3)
        assert prod[0] == pytest.approx(
            scdm.h0_mpc * np.sqrt(scdm.omega_r), rel=1e-3
        )

    def test_matter_era_scaling(self, bg_scdm):
        # H^2 ~ a^-3 between equality and today
        h1, h2 = bg_scdm.hubble(0.01), bg_scdm.hubble(0.04)
        assert float(h1 / h2) == pytest.approx(4.0**1.5, rel=0.02)

    def test_pressure_radiation_era(self, bg_scdm):
        # w -> 1/3 deep in the radiation era
        a = 1e-8
        w = float(bg_scdm.gpres(a) / bg_scdm.grho(a))
        assert w == pytest.approx(1.0 / 3.0, rel=1e-3)

    def test_pressure_matter_era(self, bg_scdm):
        w = float(bg_scdm.gpres(0.05) / bg_scdm.grho(0.05))
        assert abs(w) < 0.01

    def test_lambda_dominates_late_lcdm(self):
        bg = Background(lambda_cdm())
        w = float(bg.gpres(1.0) / bg.grho(1.0))
        assert w < -0.5


class TestConformalTime:
    def test_monotonic(self, bg_scdm):
        a = np.geomspace(1e-9, 1.0, 200)
        tau = bg_scdm.conformal_time(a)
        assert np.all(np.diff(tau) > 0)

    def test_radiation_era_analytic(self, bg_scdm, scdm):
        # tau = a / (H0 sqrt(Omega_r,early)) deep in the radiation era
        a = 1e-8
        expected = a / (
            scdm.h0_mpc
            * np.sqrt(
                scdm.omega_gamma
                * (1 + scdm.n_nu_massless * 0.22711)
            )
        )
        assert float(bg_scdm.conformal_time(a)) == pytest.approx(
            expected, rel=5e-3
        )

    def test_tau0_scdm(self, bg_scdm):
        # conformal age of Omega=1, h=0.5: close to 2/H0 * (1 - corrections)
        assert 11000 < bg_scdm.tau0 < 12500

    def test_roundtrip(self, bg_scdm):
        a = np.geomspace(1e-8, 0.99, 50)
        a2 = bg_scdm.a_of_tau(bg_scdm.conformal_time(a))
        assert np.allclose(a2, a, rtol=1e-8)

    def test_out_of_range_raises(self, bg_scdm):
        with pytest.raises(ParameterError):
            bg_scdm.conformal_time(1e-12)
        with pytest.raises(ParameterError):
            bg_scdm.a_of_tau(bg_scdm.tau0 * 2)


class TestDerivatives:
    def test_hconf_derivative_numeric(self, bg_scdm):
        # compare analytic H_conf' with a finite difference along tau
        a0 = 1e-3
        tau0 = float(bg_scdm.conformal_time(a0))
        dtau = 0.5
        a_p = float(bg_scdm.a_of_tau(tau0 + dtau))
        a_m = float(bg_scdm.a_of_tau(tau0 - dtau))
        num = (
            float(bg_scdm.conformal_hubble(a_p))
            - float(bg_scdm.conformal_hubble(a_m))
        ) / (2 * dtau)
        ana = float(bg_scdm.dconformal_hubble_dtau(a0))
        assert num == pytest.approx(ana, rel=1e-3)

    def test_addot_positive_matter_era(self, bg_scdm):
        # a''/a = (4 pi G/3) a^2 (rho - 3p) > 0 once matter contributes
        assert float(bg_scdm.addot_over_a(0.01)) > 0

    def test_equality_scale(self, bg_scdm, scdm):
        assert bg_scdm.a_equality_exact() == pytest.approx(
            scdm.a_equality, rel=1e-3
        )


class TestMassiveNuBackground:
    def test_closure_with_massive_nu(self, bg_mdm, mdm):
        assert float(bg_mdm.grho(1.0)) == pytest.approx(
            mdm.h0_mpc**2 * (1 - mdm.omega_k), rel=1e-6
        )

    def test_massive_nu_relativistic_early(self, bg_mdm, mdm):
        # at a -> 0 the massive species carries its massless-equivalent
        a = 1e-8
        comps = bg_mdm.grho_components(a)
        expected = mdm.h0_mpc**2 * 0.22711 * mdm.omega_gamma / a**2
        assert float(comps["nu_massive"]) == pytest.approx(expected, rel=1e-3)

    def test_massive_nu_matterlike_today(self, bg_mdm, mdm):
        comps = bg_mdm.grho_components(1.0)
        expected = mdm.h0_mpc**2 * mdm.omega_nu
        assert float(comps["nu_massive"]) == pytest.approx(expected, rel=1e-4)

    def test_pressure_factor_limits(self, bg_mdm):
        tab = bg_mdm.nu_tables
        # relativistic: 3p/rho -> 1; non-relativistic: -> 0
        assert float(tab.pressure_factor(1e-8) / tab.rho_factor(1e-8)) == pytest.approx(1.0, rel=1e-3)
        assert float(tab.pressure_factor(1.0) / tab.rho_factor(1.0)) < 0.01
