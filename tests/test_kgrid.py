"""Wavenumber grids and dispatch ordering."""

import numpy as np
import pytest

from repro import KGrid, ParameterError, cl_kgrid, matter_kgrid


class TestKGrid:
    def test_largest_first_default(self):
        g = KGrid.from_k([0.1, 0.3, 0.2])
        assert np.all(g.k == np.array([0.1, 0.2, 0.3]))
        # dispatch order points at descending k
        assert list(g.k[g.dispatch_order]) == [0.3, 0.2, 0.1]

    def test_ascending_option(self):
        g = KGrid.from_k([0.3, 0.1], largest_first=False)
        assert list(g.k[g.dispatch_order]) == [0.1, 0.3]

    def test_len_and_iter(self):
        g = KGrid.from_k([0.1, 0.2])
        assert len(g) == 2
        assert list(g) == [0.1, 0.2]

    def test_negative_k_rejected(self):
        with pytest.raises(ParameterError):
            KGrid.from_k([-0.1, 0.2])

    def test_duplicate_k_deduplicated(self):
        # from_k cleans duplicates (the master must never dispatch the
        # same wavenumber twice)...
        g = KGrid.from_k([0.1, 0.2, 0.1])
        assert list(g.k) == [0.1, 0.2]

    def test_duplicate_k_rejected_by_constructor(self):
        # ...but the strict constructor still rejects them
        with pytest.raises(ParameterError):
            KGrid(k=np.array([0.1, 0.1]), dispatch_order=np.array([0, 1]))

    def test_bad_permutation_rejected(self):
        with pytest.raises(ParameterError):
            KGrid(k=np.array([0.1, 0.2]), dispatch_order=np.array([0, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            KGrid.from_k([])


class TestClKGrid:
    def test_covers_target_multipole(self, bg_scdm):
        g = cl_kgrid(bg_scdm, l_max=100)
        assert g.k[-1] * bg_scdm.tau0 > 100

    def test_resolution_scales_with_points_per_period(self, bg_scdm):
        g1 = cl_kgrid(bg_scdm, l_max=100, points_per_period=2)
        g2 = cl_kgrid(bg_scdm, l_max=100, points_per_period=6)
        assert g2.nk > 2 * g1.nk

    def test_cap_respected(self, bg_scdm):
        g = cl_kgrid(bg_scdm, l_max=3000, points_per_period=10, nk_cap=500)
        assert g.nk <= 500


class TestMatterKGrid:
    def test_log_spaced(self):
        g = matter_kgrid(1e-4, 1.0, 13)
        ratios = g.k[1:] / g.k[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_bad_range_rejected(self):
        with pytest.raises(ParameterError):
            matter_kgrid(1.0, 0.1)
