"""Cross-gauge validation: synchronous vs conformal Newtonian.

COSMICS shipped LINGER in both gauges; the two implementations here are
independent (different variables, different metric equations, different
tight-coupling closures) and must agree on every gauge-invariant or
properly transformed quantity.  This is the package's strongest
end-to-end correctness check.
"""

import numpy as np
import pytest

from repro.perturbations import (
    default_record_grid,
    evolve_mode,
    evolve_mode_newtonian,
)


@pytest.fixture(scope="module")
def pair_k05(bg_scdm, thermo_scdm):
    k = 0.05
    grid = default_record_grid(bg_scdm, thermo_scdm, k)
    syn = evolve_mode(bg_scdm, thermo_scdm, k, record_tau=grid, rtol=1e-5)
    con = evolve_mode_newtonian(bg_scdm, thermo_scdm, k, record_tau=grid,
                                rtol=1e-5)
    return syn, con


class TestPotentials:
    def test_psi_agrees(self, pair_k05):
        syn, con = pair_k05
        scale = np.max(np.abs(syn.records["psi"]))
        diff = np.abs(con.records["psi"] - syn.records["psi"])
        assert np.max(diff) < 0.01 * scale

    def test_phi_agrees(self, pair_k05):
        syn, con = pair_k05
        scale = np.max(np.abs(syn.records["phi"]))
        diff = np.abs(con.records["phi"] - syn.records["phi"])
        assert np.max(diff) < 0.01 * scale

    def test_superhorizon_psi(self, bg_scdm, thermo_scdm):
        k = 1e-4
        grid = default_record_grid(bg_scdm, thermo_scdm, k)
        con = evolve_mode_newtonian(bg_scdm, thermo_scdm, k,
                                    record_tau=grid, rtol=1e-5)
        psi = con.records["psi"]
        # conserved through RD and (nearly) through equality
        assert np.max(np.abs(psi - psi[0])) < 0.03 * abs(psi[0])


class TestGaugeTransforms:
    def test_delta_c_transform(self, pair_k05, bg_scdm):
        """delta(CN) = delta(syn) + alpha rho-bar'/rho-bar, i.e.
        delta_c(CN) = delta_c(syn) - 3 H alpha for dust (MB95 eq. 27)."""
        syn, con = pair_k05
        hc = bg_scdm.conformal_hubble(syn.records["a"])
        expected = syn.records["delta_c"] - 3.0 * hc * syn.records["alpha"]
        scale = np.max(np.abs(con.records["delta_c"]))
        assert np.max(np.abs(con.records["delta_c"] - expected)) < 1e-3 * scale
        # and the early-time values (where the shift dominates) agree too
        early = syn.tau < 10.0
        if np.any(early):
            assert np.allclose(con.records["delta_c"][early],
                               expected[early], rtol=0.02)

    def test_theta_c_transform(self, pair_k05, bg_scdm):
        """theta_c(CN) = k^2 alpha (theta_c(syn) = 0 by gauge choice)."""
        syn, con = pair_k05
        expected = syn.k**2 * syn.records["alpha"]
        scale = np.max(np.abs(con.records["theta_c"]))
        assert np.max(np.abs(con.records["theta_c"] - expected)) < 1e-3 * scale

    def test_delta_g_transform(self, pair_k05, bg_scdm):
        """delta_g(CN) = delta_g(syn) - 4 H alpha (w = 1/3)."""
        syn, con = pair_k05
        hc = bg_scdm.conformal_hubble(syn.records["a"])
        expected = syn.records["delta_g"] - 4.0 * hc * syn.records["alpha"]
        scale = np.max(np.abs(con.records["delta_g"]))
        assert np.max(np.abs(con.records["delta_g"] - expected)) < 5e-3 * scale


class TestGaugeInvariants:
    def test_final_multipoles_l_ge_2(self, pair_k05):
        """F_l for l >= 2 is gauge invariant: the two codes' final
        hierarchies must match."""
        syn, con = pair_k05
        fs, fc = syn.f_gamma_final, con.f_gamma_final
        scale = np.max(np.abs(fs[2:9]))
        assert np.max(np.abs(fs[2:9] - fc[2:9])) < 5e-3 * scale

    def test_polarization_gauge_invariant(self, pair_k05):
        syn, con = pair_k05
        gs, gc = syn.g_gamma_final, con.g_gamma_final
        scale = max(np.max(np.abs(gs)), 1e-300)
        assert np.max(np.abs(gs - gc)) < 5e-3 * scale

    def test_shear_gauge_invariant(self, pair_k05):
        syn, con = pair_k05
        scale = np.max(np.abs(syn.records["sigma_g"]))
        diff = np.abs(con.records["sigma_g"] - syn.records["sigma_g"])
        assert np.max(diff) < 0.01 * scale


class TestConstraintQuality:
    def test_momentum_residual_small(self, pair_k05):
        """The CN run's momentum-constraint residual stays small through
        recombination (it is a diagnostic of the energy-form evolution)."""
        _, con = pair_k05
        r = con.records["energy_residual"]
        tau = con.tau
        sel = (tau > con.tau_switch * 1.05) & (tau < 1000.0)
        assert np.nanmax(np.abs(r[sel])) < 0.1

    def test_cost_comparable_to_synchronous(self, pair_k05):
        syn, con = pair_k05
        assert con.stats.n_steps < 1.5 * syn.stats.n_steps


class TestMassiveNeutrinosCrossGauge:
    def test_mdm_psi_agrees(self, bg_mdm, thermo_mdm):
        k = 0.05
        grid = default_record_grid(bg_mdm, thermo_mdm, k)
        syn = evolve_mode(bg_mdm, thermo_mdm, k, nq=6, lmax_massive_nu=6,
                          record_tau=grid, rtol=1e-4)
        con = evolve_mode_newtonian(bg_mdm, thermo_mdm, k, nq=6,
                                    lmax_massive_nu=6, record_tau=grid,
                                    rtol=1e-4)
        scale = np.max(np.abs(syn.records["psi"]))
        assert np.max(np.abs(con.records["psi"] - syn.records["psi"])) < (
            0.02 * scale
        )
