"""Golden-regression guardrail: frozen physics outputs.

A small serial LINGER run with *frozen* numerical settings is compared
against JSON snapshots committed under ``tests/data/``.  Any change to
the physics pipeline — background, thermal history, Boltzmann hierarchy,
integrator, spectra — that moves C_l or the transfer-function
observables by more than rtol=1e-8 fails here.

The run settings below are deliberately duplicated (not imported from a
fixture) so that innocent fixture churn cannot silently invalidate the
goldens.  Do not edit them; if the physics changes *intentionally*,
regenerate the snapshots with::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py --regen-golden

and commit the new ``tests/data/golden_*.json`` together with an
explanation of why the numbers moved.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import KGrid, LingerConfig, run_linger
from repro.spectra.cl import cl_from_hierarchy

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_CL = DATA_DIR / "golden_cl.json"
GOLDEN_TK = DATA_DIR / "golden_tk.json"

#: Match tolerance: well above float64 noise, far below any physics change.
RTOL = 1e-8

# -- frozen run settings (never change silently) ----------------------------
GOLDEN_KGRID = dict(k_min=3e-4, k_max=0.03, nk=8)
GOLDEN_CONFIG = dict(
    lmax_photon=24,
    lmax_nu=12,
    rtol=1e-4,
    record_sources=False,
    keep_mode_results=False,
)

#: Per-k header observables snapshotted into golden_tk.json.
TK_FIELDS = [
    "delta_m", "delta_c", "delta_b", "delta_g", "delta_nu",
    "theta_b", "theta_g", "phi", "psi", "eta", "a_end", "tau_end",
]


@pytest.fixture(scope="module")
def golden_run(scdm, bg_scdm, thermo_scdm):
    kg = KGrid.from_k(np.geomspace(
        GOLDEN_KGRID["k_min"], GOLDEN_KGRID["k_max"], GOLDEN_KGRID["nk"]))
    return run_linger(scdm, kg, LingerConfig(**GOLDEN_CONFIG),
                      background=bg_scdm, thermo=thermo_scdm)


def snapshot_cl(result) -> dict:
    l, cl = cl_from_hierarchy(result)
    return {
        "settings": {"kgrid": GOLDEN_KGRID, "config": GOLDEN_CONFIG},
        "l": [int(x) for x in l],
        "cl": [float(x) for x in cl],
    }


def snapshot_tk(result) -> dict:
    out = {
        "settings": {"kgrid": GOLDEN_KGRID, "config": GOLDEN_CONFIG},
        "k": [float(x) for x in result.k],
    }
    for name in TK_FIELDS:
        out[name] = [float(getattr(h, name)) for h in result.headers]
    return out


def _check(path: Path, fresh: dict, regen: bool) -> None:
    if regen:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(fresh, indent=1, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"{path} is missing — generate it with --regen-golden and "
            "commit it"
        )
    stored = json.loads(path.read_text())
    assert stored["settings"] == fresh["settings"], (
        "golden run settings drifted — the frozen constants in "
        "test_golden_regression.py were edited"
    )
    for key in fresh:
        if key == "settings":
            continue
        np.testing.assert_allclose(
            np.asarray(fresh[key], dtype=float),
            np.asarray(stored[key], dtype=float),
            rtol=RTOL, atol=0.0,
            err_msg=f"{path.name}:{key} drifted beyond rtol={RTOL}",
        )


@pytest.mark.golden
def test_golden_cl(golden_run, regen_golden):
    """Unnormalized hierarchy C_l (l = 2 .. lmax-3) matches the frozen
    snapshot to one part in 1e8."""
    _check(GOLDEN_CL, snapshot_cl(golden_run), regen_golden)


@pytest.mark.golden
def test_golden_transfer(golden_run, regen_golden):
    """Per-k transfer observables (delta_m, delta_c, delta_b, delta_g,
    potentials, ...) match the frozen snapshot to one part in 1e8."""
    _check(GOLDEN_TK, snapshot_tk(golden_run), regen_golden)


@pytest.mark.golden
def test_golden_run_is_deterministic_under_telemetry(golden_run, scdm,
                                                     bg_scdm, thermo_scdm):
    """Re-running one golden mode with telemetry *enabled* is
    bit-identical: instrumentation never touches the numerics."""
    from repro import Telemetry
    from repro.linger.serial import compute_mode

    cfg = LingerConfig(**GOLDEN_CONFIG)
    k = float(golden_run.k[-1])
    telemetry = Telemetry()
    header, payload, _ = compute_mode(bg_scdm, thermo_scdm, k,
                                      ik=len(golden_run.k), config=cfg,
                                      telemetry=telemetry)
    base = golden_run.headers[-1]
    assert header.delta_m == base.delta_m  # bitwise, not approx
    assert header.phi == base.phi
    assert np.array_equal(payload.f_gamma, golden_run.payloads[-1].f_gamma)
    assert len(telemetry.modes) == 1 and telemetry.modes[0].n_rhs > 0
