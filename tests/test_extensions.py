"""Extension features: reionization, isocurvature, E-mode polarization."""

import numpy as np
import pytest

from repro import Background, ParameterError, ThermalHistory, standard_cdm
from repro.perturbations import default_record_grid, evolve_mode
from repro.perturbations.initial import isocurvature_initial_conditions
from repro.perturbations.state import StateLayout
from repro.spectra import cl_from_los
from repro.spectra.polarization import cl_ee_from_los, polarization_source


class TestReionization:
    @pytest.fixture(scope="class")
    def thermo_reion(self, bg_scdm):
        return ThermalHistory(bg_scdm, z_reion=50.0)

    def test_optical_depth_raised(self, thermo_reion, thermo_scdm):
        assert thermo_reion.tau_reion > 0.01
        assert thermo_scdm.tau_reion < 1e-3

    def test_xe_reionized_today(self, thermo_reion, scdm):
        f_he = scdm.y_he / (4 * (1 - scdm.y_he))
        assert float(thermo_reion.x_e(1.0)) == pytest.approx(
            1 + f_he, rel=1e-3
        )

    def test_xe_untouched_at_recombination(self, thermo_reion, thermo_scdm):
        a = 1.0 / 1101.0
        assert float(thermo_reion.x_e(a)) == pytest.approx(
            float(thermo_scdm.x_e(a)), rel=1e-6
        )

    def test_recombination_peak_still_found(self, thermo_reion):
        assert 1000 < thermo_reion.z_rec < 1250

    def test_visibility_rescattering_bump(self, thermo_reion, bg_scdm):
        """Reionization adds a second visibility bump at low redshift."""
        a_reion = 1.0 / 31.0
        tau_late = float(bg_scdm.conformal_time(a_reion))
        g_late = float(thermo_reion.visibility(tau_late))
        assert g_late > 1e-6

    def test_optical_depth_scales_with_z_reion(self, bg_scdm):
        t1 = ThermalHistory(bg_scdm, z_reion=20.0)
        t2 = ThermalHistory(bg_scdm, z_reion=60.0)
        assert t2.tau_reion > 2.0 * t1.tau_reion


class TestIsocurvature:
    def test_initial_state_entropy_like(self, bg_scdm):
        lo = StateLayout(lmax_photon=8, lmax_nu=8)
        y = isocurvature_initial_conditions(lo, bg_scdm, 0.05, 0.5)
        assert y[lo.DELTA_C] == pytest.approx(1.0, abs=0.02)
        assert abs(y[lo.sl_fg][0]) < 0.05  # photons nearly unperturbed
        assert abs(y[lo.ETA]) < 0.05  # no initial curvature

    def test_late_start_rejected(self, bg_scdm):
        lo = StateLayout(lmax_photon=8, lmax_nu=8)
        with pytest.raises(ParameterError):
            # tau = 100 Mpc is near equality: far too late for the series
            isocurvature_initial_conditions(lo, bg_scdm, 1e-3, 100.0)

    def test_mode_evolves_and_grows(self, bg_scdm, thermo_scdm):
        m = evolve_mode(bg_scdm, thermo_scdm, 0.05, rtol=1e-4,
                        initial_conditions="isocurvature")
        assert abs(m.y_final[m.layout.DELTA_C]) > 100.0

    def test_differs_from_adiabatic(self, bg_scdm, thermo_scdm):
        m_iso = evolve_mode(bg_scdm, thermo_scdm, 0.02, rtol=1e-4,
                            initial_conditions="isocurvature")
        m_ad = evolve_mode(bg_scdm, thermo_scdm, 0.02, rtol=1e-4)
        r = (m_iso.y_final[m_iso.layout.DELTA_C]
             / m_ad.y_final[m_ad.layout.DELTA_C])
        assert not np.isclose(abs(r), 1.0, rtol=0.2)

    def test_unknown_ic_name_rejected(self, bg_scdm, thermo_scdm):
        with pytest.raises(ParameterError):
            evolve_mode(bg_scdm, thermo_scdm, 0.02,
                        initial_conditions="axion")

    def test_amplitude_linearity(self, bg_scdm, thermo_scdm):
        m1 = evolve_mode(bg_scdm, thermo_scdm, 0.03, rtol=1e-5,
                         initial_conditions="isocurvature", amplitude=1.0)
        m2 = evolve_mode(bg_scdm, thermo_scdm, 0.03, rtol=1e-5,
                         initial_conditions="isocurvature", amplitude=2.0)
        assert m2.y_final[m2.layout.DELTA_C] == pytest.approx(
            2.0 * m1.y_final[m1.layout.DELTA_C], rel=1e-3
        )


class TestPolarization:
    def test_ee_spectrum_positive(self, linger_small):
        l = np.arange(2, 12)
        _, cl_ee = cl_ee_from_los(linger_small, l)
        assert np.all(cl_ee >= 0.0)

    def test_ee_much_smaller_than_tt(self, linger_small):
        """Large-angle E polarization is far below temperature power
        (no reionization in the paper's model)."""
        l = np.arange(2, 12)
        _, cl_tt = cl_from_los(linger_small, l)
        _, cl_ee = cl_ee_from_los(linger_small, l)
        assert np.all(cl_ee < 0.05 * cl_tt)

    def test_source_vanishes_early(self, linger_small, mode_k05):
        thermo = linger_small.thermo
        src = polarization_source(mode_k05, thermo,
                                  linger_small.background.tau0)
        early = src.tau < 0.3 * thermo.tau_rec
        peak = np.max(np.abs(src.source))
        assert peak > 0
        assert np.max(np.abs(src.source[early])) < 1e-3 * peak

    def test_l_below_two_rejected(self, linger_small):
        with pytest.raises(ParameterError):
            cl_ee_from_los(linger_small, np.array([1, 2]))
