"""Fast uniform-grid splines (the RHS hot-path lookups)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.fastspline import LogLogCubic, UniformGridCubic


class TestUniformGridCubic:
    def test_matches_scipy_inside(self):
        from scipy.interpolate import CubicSpline

        x = np.linspace(0.0, 10.0, 101)
        y = np.sin(x) * np.exp(-0.1 * x)
        fast = UniformGridCubic(x, y)
        ref = CubicSpline(x, y)
        for xi in np.linspace(0.05, 9.95, 37):
            assert fast(xi) == pytest.approx(float(ref(xi)), abs=1e-12)

    def test_exact_at_knots(self):
        x = np.linspace(-3, 3, 31)
        y = x**3 - x
        s = UniformGridCubic(x, y)
        for xi, yi in zip(x, y):
            assert s(float(xi)) == pytest.approx(float(yi), abs=1e-10)

    def test_cubic_reproduced_exactly(self):
        x = np.linspace(0, 1, 11)
        y = 2 * x**3 - x**2 + 0.5
        s = UniformGridCubic(x, y)
        # a natural cubic spline does not reproduce a cubic exactly at
        # the ends, but interior evaluation should be very close
        assert s(0.55) == pytest.approx(2 * 0.55**3 - 0.55**2 + 0.5, abs=1e-3)

    def test_derivative_matches_numeric(self):
        x = np.linspace(0, 2 * math.pi, 200)
        s = UniformGridCubic(x, np.sin(x))
        for xi in (0.7, 2.1, 5.0):
            num = (s(xi + 1e-6) - s(xi - 1e-6)) / 2e-6
            assert s.derivative(xi) == pytest.approx(num, abs=1e-5)

    def test_clamps_outside_range(self):
        x = np.linspace(0, 1, 11)
        s = UniformGridCubic(x, x.copy())
        assert math.isfinite(s(-5.0))
        assert math.isfinite(s(7.0))

    def test_vector_matches_scalar(self):
        x = np.linspace(0, 5, 51)
        s = UniformGridCubic(x, np.cos(x))
        pts = np.linspace(0.1, 4.9, 23)
        vec = s.vector(pts)
        scal = np.array([s(float(p)) for p in pts])
        assert np.allclose(vec, scal, atol=1e-14)

    def test_nonuniform_grid_rejected(self):
        with pytest.raises(ValueError):
            UniformGridCubic(np.array([0.0, 1.0, 3.0]), np.zeros(3))

    @given(scale=st.floats(0.1, 100.0), shift=st.floats(-10, 10))
    @settings(max_examples=25, deadline=None)
    def test_affine_invariance(self, scale, shift):
        x = np.linspace(0, 1, 21)
        y = np.exp(-x) + x**2
        s1 = UniformGridCubic(x, y)
        s2 = UniformGridCubic(scale * x + shift, y)
        assert s2(scale * 0.4321 + shift) == pytest.approx(s1(0.4321),
                                                           rel=1e-9)


class TestLogLogCubic:
    def test_power_law_exact(self):
        x = np.geomspace(1e-3, 1e3, 121)
        s = LogLogCubic(x, 5.0 * x**-2.5)
        assert s(0.37) == pytest.approx(5.0 * 0.37**-2.5, rel=1e-10)

    def test_log_derivative(self):
        x = np.geomspace(0.01, 100, 201)
        s = LogLogCubic(x, 3.0 * x**1.7)
        assert s.log_derivative(1.23) == pytest.approx(1.7, abs=1e-8)

    def test_positive_required(self):
        x = np.geomspace(0.1, 10, 11)
        y = np.ones(11)
        y[5] = -1.0
        with pytest.raises(ValueError):
            LogLogCubic(x, y)

    def test_vector(self):
        x = np.geomspace(0.1, 10, 51)
        s = LogLogCubic(x, x**0.5)
        pts = np.geomspace(0.2, 8, 9)
        assert np.allclose(s.vector(pts), pts**0.5, rtol=1e-8)


class TestVectorBitCompat:
    """The fused-gather vector path must match the scalar path bitwise.

    ``vector()`` packs [c3, c2, c1, c0] rows and gathers once; the
    Horner grouping is identical to ``__call__``, so every result must
    be the same float64, not merely close.
    """

    def _spline(self):
        x = np.linspace(-2.0, 7.0, 181)
        y = np.sin(3.0 * x) / (1.0 + x * x)
        return UniformGridCubic(x, y)

    def test_bitwise_inside_range(self):
        s = self._spline()
        pts = np.linspace(-1.99, 6.99, 1009)
        vec = s.vector(pts)
        scal = np.array([s(float(p)) for p in pts])
        assert np.array_equal(vec, scal)

    def test_bitwise_outside_range(self):
        s = self._spline()
        pts = np.array([-100.0, -2.5, 7.5, 1e4])
        assert np.array_equal(s.vector(pts),
                              np.array([s(float(p)) for p in pts]))

    def test_bitwise_at_knots(self):
        s = self._spline()
        knots = np.linspace(-2.0, 7.0, 181)
        assert np.array_equal(s.vector(knots),
                              np.array([s(float(p)) for p in knots]))

    def test_nd_shapes(self):
        s = self._spline()
        pts = np.linspace(-1.5, 6.5, 24).reshape(2, 3, 4)
        out = s.vector(pts)
        assert out.shape == (2, 3, 4)
        assert np.array_equal(out.ravel(), s.vector(pts.ravel()))

    def test_packed_and_unpacked_coefficients_agree(self):
        # system_batched reads c0..c3 directly; the packed _c rows used
        # by vector() must be the same numbers
        s = self._spline()
        assert np.array_equal(s._c[:, 0], s.c3)
        assert np.array_equal(s._c[:, 1], s.c2)
        assert np.array_equal(s._c[:, 2], s.c1)
        assert np.array_equal(s._c[:, 3], s.c0)

    def test_loglog_vector_close(self):
        # np.exp (SIMD) and math.exp (libm) may differ in the last ulp,
        # so the log-log wrapper is compared with tolerance, not bits
        x = np.geomspace(1e-2, 1e3, 101)
        s = LogLogCubic(x, 2.0 * x**-1.3)
        pts = np.geomspace(2e-2, 8e2, 333)
        scal = np.array([s(float(p)) for p in pts])
        assert np.allclose(s.vector(pts), scal, rtol=1e-15)
