"""The serial LINGER driver and its result container."""

import numpy as np
import pytest

from repro import KGrid, LingerConfig, ParameterError
from repro.linger import run_linger
from repro.linger.serial import compute_mode


class TestConfig:
    def test_fixed_lmax(self):
        cfg = LingerConfig(lmax_photon=20, lmax_mode="fixed")
        assert cfg.lmax_for_k(0.5, 10000.0) == 20

    def test_scaled_lmax_grows_with_k(self):
        cfg = LingerConfig(lmax_photon=8, lmax_mode="scaled",
                           lmax_cap=2000)
        small = cfg.lmax_for_k(1e-4, 10000.0)
        big = cfg.lmax_for_k(0.1, 10000.0)
        assert small < big <= 2000

    def test_scaled_lmax_capped(self):
        cfg = LingerConfig(lmax_mode="scaled", lmax_cap=100)
        assert cfg.lmax_for_k(10.0, 10000.0) == 100

    def test_unknown_mode_rejected(self):
        cfg = LingerConfig(lmax_mode="bogus")
        with pytest.raises(ParameterError):
            cfg.lmax_for_k(0.1, 1.0)


class TestComputeMode:
    def test_header_payload_consistent(self, bg_scdm, thermo_scdm):
        cfg = LingerConfig(rtol=1e-4, record_sources=False)
        header, payload, mode = compute_mode(bg_scdm, thermo_scdm, 0.01,
                                             ik=5, config=cfg)
        assert header.ik == payload.ik == 5
        assert header.lmax == payload.lmax == cfg.lmax_photon
        assert header.k == payload.k == 0.01
        assert np.allclose(payload.f_gamma, mode.f_gamma_final)
        assert header.cpu_seconds > 0
        assert header.n_rhs == mode.stats.n_rhs

    def test_header_observables_match_records(self, bg_scdm, thermo_scdm):
        cfg = LingerConfig(rtol=1e-4, record_sources=True)
        header, _, mode = compute_mode(bg_scdm, thermo_scdm, 0.02, ik=1,
                                       config=cfg)
        assert header.delta_c == pytest.approx(
            mode.records["delta_c"][-1], rel=1e-6
        )
        assert header.a_end == pytest.approx(1.0, rel=1e-4)


class TestRunLinger:
    def test_results_ascending_k(self, linger_small):
        ks = [h.k for h in linger_small.headers]
        assert ks == sorted(ks)
        assert [h.ik for h in linger_small.headers] == list(
            range(1, linger_small.kgrid.nk + 1)
        )

    def test_matter_growth_with_k(self, linger_small):
        """|delta_m| today grows toward smaller scales over this k range
        (all modes below the peak of the transfer function)."""
        dm = np.abs(linger_small.delta_m)
        assert dm[-1] > dm[0]

    def test_modes_kept_when_requested(self, linger_small):
        assert all(m is not None for m in linger_small.modes)

    def test_modes_dropped_when_not(self, scdm, bg_scdm, thermo_scdm):
        kg = KGrid.from_k([0.002, 0.01])
        cfg = LingerConfig(rtol=1e-4, record_sources=False,
                           keep_mode_results=False)
        res = run_linger(scdm, kg, cfg, background=bg_scdm,
                         thermo=thermo_scdm)
        assert all(m is None for m in res.modes)

    def test_theta_matrix_shape(self, linger_small):
        th = linger_small.theta_l_matrix()
        assert th.shape == (linger_small.kgrid.nk,
                            linger_small.config.lmax_photon + 1)

    def test_cpu_seconds_recorded(self, linger_small):
        assert np.all(linger_small.cpu_seconds > 0)

    def test_wall_time_recorded(self, linger_small):
        assert linger_small.wall_seconds > 0
