"""Cosmological parameter sets."""

import pytest
from hypothesis import given, strategies as st

from repro import CosmologyParams, ParameterError
from repro.params import lambda_cdm, mixed_dark_matter, standard_cdm, tilted_cdm


class TestValidation:
    def test_negative_h_rejected(self):
        with pytest.raises(ParameterError):
            CosmologyParams(h=-0.5)

    def test_zero_baryons_rejected(self):
        with pytest.raises(ParameterError):
            CosmologyParams(omega_b=0.0)

    def test_negative_density_rejected(self):
        with pytest.raises(ParameterError):
            CosmologyParams(omega_c=-0.1)

    def test_massive_nu_without_species_rejected(self):
        with pytest.raises(ParameterError):
            CosmologyParams(omega_nu=0.1, n_nu_massive=0)

    def test_species_without_omega_nu_rejected(self):
        with pytest.raises(ParameterError):
            CosmologyParams(omega_nu=0.0, n_nu_massive=1)

    def test_bad_helium_fraction_rejected(self):
        with pytest.raises(ParameterError):
            CosmologyParams(y_he=1.5)


class TestStandardCDM:
    def test_is_flat_omega_one(self):
        p = standard_cdm()
        assert p.omega_m == pytest.approx(1.0)
        # radiation makes omega_k very slightly negative
        assert abs(p.omega_k) < 1e-3

    def test_paper_values(self):
        p = standard_cdm()
        assert p.h == 0.5
        assert p.omega_b == 0.05
        assert p.n_s == 1.0
        assert p.t_cmb == pytest.approx(2.726)

    def test_h0_in_mpc(self):
        assert standard_cdm().h0_mpc == pytest.approx(0.5 / 2997.92458)

    def test_omega_gamma(self):
        # 2.47e-5 / h^2 with h = 0.5
        assert standard_cdm().omega_gamma == pytest.approx(9.89e-5, rel=0.01)

    def test_equality_epoch(self):
        p = standard_cdm()
        # a_eq = omega_r / omega_m ~ 1.7e-4 for this model
        assert 1e-4 < p.a_equality < 3e-4


class TestVariants:
    def test_tilted(self):
        assert tilted_cdm(0.8).n_s == 0.8

    def test_lambda_cdm_flat(self):
        p = lambda_cdm()
        assert p.omega_lambda == 0.7
        assert abs(p.omega_k) < 1e-3

    def test_mdm_budget(self):
        p = mixed_dark_matter(omega_nu=0.2)
        assert p.omega_nu == 0.2
        assert p.omega_m == pytest.approx(1.0)
        assert p.n_nu_massive == 1

    def test_mdm_neutrino_mass_scale(self):
        # omega_nu h^2 = 0.05 corresponds to ~4.7 eV
        p = mixed_dark_matter(omega_nu=0.2)
        assert p.nu_mass_ev == pytest.approx(4.7, rel=0.05)

    def test_massless_model_has_zero_mass(self):
        assert standard_cdm().nu_mass_ev == 0.0
        assert standard_cdm().nu_mass_over_t_nu == 0.0


class TestDerived:
    def test_with_override(self):
        p = standard_cdm().with_(n_s=0.9)
        assert p.n_s == 0.9
        assert p.h == 0.5

    def test_frozen(self):
        with pytest.raises(Exception):
            standard_cdm().h = 0.7

    def test_grhom_positive(self):
        assert standard_cdm().grhom > 0

    def test_hydrogen_density(self):
        # n_H ~ 1e-7 cm^-3 for Omega_b h^2 = 0.0125
        n = standard_cdm().n_hydrogen_cgs
        assert 5e-8 < n < 5e-7

    @given(h=st.floats(0.3, 1.0), ob=st.floats(0.01, 0.1))
    def test_omega_total_closes(self, h, ob):
        p = CosmologyParams(h=h, omega_b=ob, omega_c=1.0 - ob)
        assert p.omega_total == pytest.approx(
            p.omega_m + p.omega_r + p.omega_lambda
        )
        assert p.omega_k == pytest.approx(1.0 - p.omega_total)
