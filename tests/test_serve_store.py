"""Run-result store tests: LRU byte cap, corruption quarantine,
concurrent writers, and the bitwise exact-hit guarantee."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import ResultStore, ServeRequest, spectrum_product


def _entry(value: float, n: int = 1024) -> dict:
    return {"cl": np.full(n, value, dtype=np.float64)}


ENTRY_BYTES = 1024 * 8


class TestMemoryLRU:
    def test_eviction_at_byte_cap(self):
        store = ResultStore(None, mem_cap_bytes=3 * ENTRY_BYTES)
        for i in range(4):
            store.put(f"d{i}", _entry(float(i)))
        # d0 (least recent) fell off the 3-entry cap
        assert store.entries == 3
        assert store.evictions == 1
        assert store.mem_bytes <= store.mem_cap_bytes
        assert store.get("d0") is None
        assert store.get("d3").arrays["cl"][0] == 3.0

    def test_get_refreshes_recency(self):
        store = ResultStore(None, mem_cap_bytes=2 * ENTRY_BYTES)
        store.put("a", _entry(1.0))
        store.put("b", _entry(2.0))
        store.get("a")                      # a is now most recent
        store.put("c", _entry(3.0))         # evicts b, not a
        assert store.get("a") is not None
        assert store.get("b") is None

    def test_oversized_entry_never_resides(self):
        store = ResultStore(None, mem_cap_bytes=ENTRY_BYTES)
        store.put("big", _entry(1.0, n=4096))
        assert store.entries == 0
        assert store.evictions == 1

    def test_replacement_does_not_double_count(self):
        store = ResultStore(None, mem_cap_bytes=4 * ENTRY_BYTES)
        for _ in range(5):
            store.put("same", _entry(1.0))
        assert store.entries == 1
        assert store.mem_bytes == ENTRY_BYTES

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ResultStore(None, mem_cap_bytes=0)


class TestDiskTier:
    def test_eviction_demotes_not_destroys(self, tmp_path):
        store = ResultStore(tmp_path, mem_cap_bytes=2 * ENTRY_BYTES)
        for i in range(4):
            store.put(f"d{i}", _entry(float(i)))
        assert store.get("d0") is not None   # promoted back from disk
        assert store.hits_disk == 1

    def test_survives_restart(self, tmp_path):
        ResultStore(tmp_path).put("key", _entry(7.0),
                                  meta={"note": "hello"})
        fresh = ResultStore(tmp_path)
        hit = fresh.get("key")
        assert hit is not None
        assert fresh.hits_disk == 1
        assert hit.meta["note"] == "hello"
        np.testing.assert_array_equal(hit.arrays["cl"],
                                      _entry(7.0)["cl"])

    def test_corrupt_entry_quarantined(self, tmp_path):
        writer = ResultStore(tmp_path)
        writer.put("key", _entry(1.0))
        path = writer.disk.path("key")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF         # bit rot mid-file
        path.write_bytes(bytes(blob))

        fresh = ResultStore(tmp_path)
        assert fresh.get("key") is None      # digest mismatch -> miss
        assert fresh.corrupt == 1
        assert not path.exists()             # entry deleted (quarantine)
        # the service recomputes and the rewrite heals the store
        fresh.put("key", _entry(1.0))
        assert ResultStore(tmp_path).get("key") is not None

    def test_concurrent_same_key_writers(self, tmp_path):
        """N writers racing one digest: atomic rename means the entry
        is always complete and digest-valid, never torn."""
        store = ResultStore(tmp_path, mem_cap_bytes=8 * ENTRY_BYTES)
        barrier = threading.Barrier(8)
        errors = []

        def write():
            try:
                barrier.wait()
                store.put("digest", _entry(42.0))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        hit = ResultStore(tmp_path).get("digest")
        assert hit is not None
        np.testing.assert_array_equal(hit.arrays["cl"],
                                      _entry(42.0)["cl"])

    def test_stats_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", _entry(1.0))
        s = store.stats()
        assert s["entries"] == 1
        assert s["persistent"] is True
        assert s["mem_bytes"] == ENTRY_BYTES


class TestExactHitBitwise:
    def test_round_trip_is_bitwise(self, scdm, linger_small):
        """An exact hit replays the stored product to the last bit —
        through the npz round trip, against the freshly computed C_l."""
        request = ServeRequest(params=scdm, k_min=3e-4, k_max=0.03,
                               nk=linger_small.kgrid.nk, lmax=24)
        l, cl = spectrum_product(scdm, linger_small.kgrid.k,
                                 linger_small.payloads)
        digest = request.digest()
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            ResultStore(tmp).put(digest, {
                "l": l.astype(np.int64), "cl": cl,
                "k": np.asarray(linger_small.kgrid.k),
            })
            hit = ResultStore(tmp).get(digest)
        assert hit is not None
        # bitwise: not allclose — array_equal on the raw float64
        np.testing.assert_array_equal(hit.arrays["cl"], cl)
        np.testing.assert_array_equal(hit.arrays["l"], l)
        # and recomputing the product from the run gives the same bits
        _l2, cl2 = spectrum_product(scdm, linger_small.kgrid.k,
                                    linger_small.payloads)
        np.testing.assert_array_equal(cl2, cl)
