"""Spectrum-service tests: protocol, digests, the warm pool, the
asyncio daemon (tiers + coalescing), lifecycle, and telemetry."""

from __future__ import annotations

import asyncio
import dataclasses
import json

import numpy as np
import pytest

from repro import standard_cdm, tilted_cdm
from repro.errors import ServeError
from repro.serve import (
    ServeClient,
    ServeRequest,
    SpectrumServer,
    WarmPool,
    decode_message,
    encode_message,
    spectrum_product,
)
from repro.serve import lifecycle
from repro.telemetry.report import RunReport, ServeMetrics


def small_request(params=None, **overrides) -> ServeRequest:
    kwargs = dict(params=params or standard_cdm(), k_min=3e-4,
                  k_max=3e-3, nk=4, lmax=8, rtol=1e-3)
    kwargs.update(overrides)
    return ServeRequest(**kwargs)


class TestParamsDigest:
    def test_digest_is_cache_key(self, scdm):
        from repro.cache.keys import cache_key

        assert scdm.digest("background", {"n": 1}) == \
            cache_key("background", scdm, {"n": 1})

    def test_digest_separates_kinds_and_shapes(self, scdm):
        assert scdm.digest("a") != scdm.digest("b")
        assert scdm.digest("a", {"x": 1}) != scdm.digest("a", {"x": 2})

    def test_digest_bit_exact_in_params(self, scdm):
        nudged = dataclasses.replace(scdm, h=np.nextafter(scdm.h, 1.0))
        assert scdm.digest("a") != nudged.digest("a")


class TestProtocol:
    def test_round_trip(self):
        request = small_request()
        doc = decode_message(encode_message(request.to_doc()))
        assert ServeRequest.from_doc(doc) == request
        assert ServeRequest.from_doc(doc).digest() == request.digest()

    def test_digest_covers_shape(self):
        base = small_request()
        assert small_request(nk=5).digest() != base.digest()
        assert small_request(lmax=9).digest() != base.digest()
        assert small_request(batch_size=2).digest() != base.digest()
        assert small_request(params=tilted_cdm()).digest() != base.digest()

    def test_validation(self):
        with pytest.raises(ServeError):
            small_request(nk=1)
        with pytest.raises(ServeError):
            small_request(k_min=0.0)
        with pytest.raises(ServeError):
            small_request(lmax=4)
        with pytest.raises(ServeError):
            small_request(rtol=0.0)

    def test_malformed_documents(self):
        with pytest.raises(ServeError):
            decode_message(b"not json\n")
        with pytest.raises(ServeError):
            decode_message(b"[1, 2]\n")
        with pytest.raises(ServeError):
            ServeRequest.from_doc({"params": {"bogus_field": 1.0}})

    def test_json_floats_round_trip_bitwise(self):
        values = [0.1, 1 / 3, np.nextafter(0.02, 1), 6.25e-5]
        wire = json.loads(json.dumps(values))
        assert all(a == b and np.float64(a) == np.float64(b)
                   for a, b in zip(values, wire))

    def test_l_values(self):
        assert list(small_request(lmax=8).l_values()) == [2, 3, 4, 5]


class TestWarmPool:
    @pytest.fixture(scope="class")
    def pool(self):
        with WarmPool(nproc=3, max_resident=2) as pool:
            yield pool

    @pytest.fixture(scope="class")
    def runs(self, pool):
        request = small_request()
        kgrid, config = request.kgrid(), request.config()
        first = pool.run(request.params, kgrid, config)
        second = pool.run(request.params, kgrid, config)
        return request, first, second

    def test_second_run_is_warm(self, runs):
        _request, (_, warm1), (_, warm2) = runs
        assert warm1 is False
        assert warm2 is True

    def test_warm_equals_cold_bitwise(self, runs):
        request, (cold, _), (warm, _) = runs
        for a, b in zip(cold.payloads, warm.payloads):
            np.testing.assert_array_equal(a.pack(), b.pack())
        _l, cl_cold = spectrum_product(request.params, cold.kgrid.k,
                                       cold.payloads)
        _l, cl_warm = spectrum_product(request.params, warm.kgrid.k,
                                       warm.payloads)
        np.testing.assert_array_equal(cl_cold, cl_warm)

    def test_pool_matches_serial_linger(self, runs):
        from repro import run_linger

        request, _first, (warm, _) = runs
        serial = run_linger(request.params, request.kgrid(),
                            request.config())
        for a, b in zip(serial.payloads, warm.payloads):
            np.testing.assert_array_equal(a.pack(), b.pack())

    def test_workers_keep_tables_attached(self, runs, pool):
        # both resident workers attached once, then reused the mapping
        assert pool.stats.table_attaches >= 1
        assert pool.stats.warm_table_hits >= 1

    def test_residency_is_lru_capped(self, pool, runs):
        assert pool.resident_count <= 2
        assert pool.stats.runs >= 2

    def test_close_releases_everything(self):
        pool = WarmPool(nproc=3)
        request = small_request()
        pool.run(request.params, request.kgrid(), request.config())
        pool.close()
        assert pool.resident_count == 0
        with pytest.raises(ServeError):
            pool.run(request.params, request.kgrid(), request.config())
        pool.close()  # idempotent

    def test_rejects_bad_setup(self):
        with pytest.raises(ServeError):
            WarmPool(nproc=1)
        with pytest.raises(ServeError):
            WarmPool(nproc=3, max_resident=0).close()


class TestDaemon:
    def run_daemon(self, coro_factory, **server_kwargs):
        async def main():
            server_kwargs.setdefault("nproc", 3)
            server = SpectrumServer(**server_kwargs)
            await server.start()
            try:
                return await coro_factory(server)
            finally:
                server.close()

        return asyncio.run(main())

    def test_tiers_and_coalescing(self, tmp_path):
        request = small_request()
        journal = tmp_path / "journal.jsonl"

        async def scenario(server):
            loop = asyncio.get_running_loop()

            def one():
                with ServeClient(port=server.port) as client:
                    return client.spectrum(request)

            burst = await asyncio.gather(
                *[loop.run_in_executor(None, one) for _ in range(4)])
            repeat = await loop.run_in_executor(None, one)
            return burst, repeat, server.metrics, server.journal.lines

        burst, repeat, metrics, journal_lines = self.run_daemon(
            scenario, journal_path=journal)

        tiers = sorted(r["tier"] for r in burst)
        assert tiers.count("cold") == 1
        assert set(tiers) <= {"cold", "coalesced", "store"}
        assert repeat["tier"] == "store"
        # coalescing guarantee: five requests, one computation
        assert metrics.computed_runs == 1
        assert metrics.requests == 5
        assert metrics.warm_hit_rate == pytest.approx(0.8)
        # identical responses across every tier — bitwise
        cls = {tuple(r["cl"]) for r in burst} | {tuple(repeat["cl"])}
        assert len(cls) == 1
        assert journal_lines == 5
        entries = [json.loads(line) for line in
                   journal.read_text().splitlines()]
        assert len(entries) == 5
        assert {e["tier"] for e in entries} == set(tiers) | {"store"}

    def test_distinct_requests_compute_separately(self):
        r1 = small_request()
        r2 = small_request(nk=5)

        async def scenario(server):
            loop = asyncio.get_running_loop()

            def ask(request):
                with ServeClient(port=server.port) as client:
                    return client.spectrum(request)

            a = await loop.run_in_executor(None, ask, r1)
            b = await loop.run_in_executor(None, ask, r2)
            return a, b, server.metrics

        a, b, metrics = self.run_daemon(scenario)
        assert a["digest"] != b["digest"]
        assert metrics.computed_runs == 2
        assert metrics.by_tier["cold"] == 1
        assert metrics.by_tier["warm"] == 1  # same cosmology: tables warm

    def test_store_persists_across_daemons(self, tmp_path):
        request = small_request()
        store = tmp_path / "results"

        async def ask_once(server):
            loop = asyncio.get_running_loop()

            def one():
                with ServeClient(port=server.port) as client:
                    return client.spectrum(request)

            return await loop.run_in_executor(None, one)

        first = self.run_daemon(ask_once, store_dir=store)
        second = self.run_daemon(ask_once, store_dir=store)
        assert first["tier"] == "cold"
        assert second["tier"] == "store"
        assert second["cl"] == first["cl"]

    def test_error_responses(self):
        async def scenario(server):
            loop = asyncio.get_running_loop()

            def bad_calls():
                with ServeClient(port=server.port) as client:
                    garbage = client.call({"op": "nonsense"})
                    invalid = client.call({"op": "spectrum", "nk": -3,
                                           "params": {}})
                    ping = client.ping()
                return garbage, invalid, ping

            out = await loop.run_in_executor(None, bad_calls)
            return out, server.metrics.errors

        (garbage, invalid, ping), errors = self.run_daemon(scenario)
        assert garbage["ok"] is False
        assert invalid["ok"] is False
        assert ping["ok"] is True
        assert errors == 2

    def test_stats_and_shutdown_ops(self):
        request = small_request()

        async def scenario(server):
            loop = asyncio.get_running_loop()

            def drive():
                with ServeClient(port=server.port) as client:
                    client.spectrum(request)
                    stats = client.stats()
                    client.shutdown()
                return stats

            stats = await loop.run_in_executor(None, drive)
            await asyncio.wait_for(server._stopping.wait(), timeout=5)
            return stats

        stats = self.run_daemon(scenario)
        assert stats["metrics"]["requests"] == 1
        assert stats["pool"]["runs"] == 1
        assert stats["resident_models"] == 1


class TestLifecycle:
    def test_shutdown_all_closes_pool_and_journal(self, tmp_path):
        pool = WarmPool(nproc=3)
        request = small_request()
        pool.run(request.params, request.kgrid(), request.config())
        from repro.serve.daemon import ServeJournal

        journal = ServeJournal(tmp_path / "j.jsonl")
        journal.record({"tier": "cold"})
        lifecycle.shutdown_all()
        assert pool._closed
        assert journal._fh.closed
        # drained to disk despite never calling journal.close() directly
        assert (tmp_path / "j.jsonl").read_text().count("\n") == 1

    def test_shutdown_all_is_reentrant(self):
        lifecycle.shutdown_all()
        lifecycle.shutdown_all()

    def test_sigterm_handler_installed_and_chains(self):
        import signal

        lifecycle.install_handlers()
        assert signal.getsignal(signal.SIGTERM) is lifecycle._handle_sigterm


class TestServeTelemetry:
    def test_metrics_accumulate(self):
        m = ServeMetrics()
        m.record_request("store", 0.0, 0.01)
        m.record_request("cold", 0.5, 2.0)
        m.computed_runs += 1
        assert m.requests == 2
        assert m.by_tier == {"store": 1, "cold": 1}
        assert m.warm_hit_rate == pytest.approx(0.5)
        assert m.wall_by_tier["cold"] == pytest.approx(2.0)

    def test_report_round_trip(self):
        m = ServeMetrics(requests=3, by_tier={"store": 2, "cold": 1},
                         computed_runs=1)
        report = RunReport(meta={"driver": "serve"}, serve=m)
        d = report.to_dict()
        assert d["totals"]["serve_requests"] == 3
        back = RunReport.from_dict(d)
        assert back.serve.by_tier == m.by_tier
        assert back.serve.warm_hit_rate == pytest.approx(2 / 3)

    def test_server_report_has_serve_section(self):
        async def scenario(server):
            loop = asyncio.get_running_loop()

            def one():
                with ServeClient(port=server.port) as client:
                    return client.spectrum(small_request())

            await loop.run_in_executor(None, one)
            return server.build_report()

        async def main():
            server = SpectrumServer(nproc=3)
            await server.start()
            try:
                return await scenario(server)
            finally:
                server.close()

        report = asyncio.run(main())
        assert report.serve is not None
        assert report.serve.requests == 1
        assert report.meta["driver"] == "serve"
        assert report.totals["serve_by_tier"] == {"cold": 1}


class TestCli:
    def test_parser_accepts_serve_and_request(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--nproc", "3"])
        assert args.command == "serve"
        args = parser.parse_args(["request", "--port", "1234",
                                  "--op", "stats"])
        assert args.command == "request"
        assert args.op == "stats"
