"""Chaos suite: the fault-tolerant PLINGER layer under injected faults.

Three layers of coverage:

* protocol-level recovery with fake (instant, deterministic) compute —
  kill a worker mid-run, drop/delay/corrupt result messages — with the
  :class:`FaultReport` accounting pinned against the exact injection
  counts the :class:`FaultyWorld` tallies;
* the building blocks in isolation — fault-policy bookkeeping per
  action type, the integration escalation ladder, the hardened
  checkpoint journal, FaultReport serialization;
* an end-to-end acceptance run with real physics: one of four workers
  killed mid-flight plus a deterministic result-message drop rate, and
  the final spectrum must match the fault-free run at rtol=1e-8.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import KGrid, LingerConfig, ProtocolError
from repro.errors import IntegrationError, MessagePassingError
from repro.linger.records import ModeHeader, ModePayload
from repro.mp.backends.faulty import FaultPolicy, FaultyWorld
from repro.mp.backends.inprocess import InProcessWorld
from repro.plinger import (
    FaultTolerance,
    ModeJournal,
    Tag,
    master_subroutine,
    run_plinger,
    worker_subroutine,
)
from repro.plinger.resilience import (
    LADDER_FIRST_STEP,
    LADDER_RTOL_SCALE,
    escalation_ladder,
    run_with_ladder,
)
from repro.telemetry.report import FaultReport, RunReport

NK = 12
KGRID = KGrid.from_k(np.logspace(-4, -1, NK))

#: Snappy policy for the protocol tests (fake compute is instant).
FT_FAST = FaultTolerance(
    worker_timeout=0.3,
    heartbeat_interval=0.05,
    missed_heartbeats=3,
    poll_seconds=0.02,
    payload_timeout=0.4,
    max_retries=10,
    backoff_base=0.01,
)


def fake_compute_factory(kgrid, delay=0.0, lmax=8):
    """Deterministic stand-in records keyed to the grid's k values
    (so the master's header validation has something to check)."""

    def fake_compute(ik: int):
        if delay:
            time.sleep(delay)
        k = float(kgrid.k[ik - 1])
        header = ModeHeader(
            ik=ik, k=k, tau_end=100.0, a_end=1.0, delta_c=-float(ik),
            delta_b=0.0, delta_g=0.0, delta_nu=0.0, delta_nu_massive=0.0,
            theta_b=0.0, theta_g=0.0, theta_nu=0.0, eta=0.0, hdot=0.0,
            etadot=0.0, phi=0.0, psi=0.0, delta_m=-float(ik),
            cpu_seconds=0.0, n_rhs=1.0, lmax=lmax,
        )
        payload = ModePayload(
            ik=ik, k=k, tau_end=100.0, a_end=1.0, amplitude=1.0,
            n_steps=1.0, f_gamma=np.full(lmax + 1, float(ik)),
            g_gamma=np.arange(lmax + 1, dtype=float),
        )
        return header, payload

    return fake_compute


def run_chaos(world, kgrid=KGRID, ft=FT_FAST, compute=None, kill_rank_at=None):
    """Drive a full FT protocol round on ``world`` with fake compute.

    ``kill_rank_at=(rank, seconds)`` schedules an in-process SIGKILL
    analogue.  Worker exceptions are swallowed (a dismissed or killed
    worker dying loudly is expected); the master's log is the oracle.
    """
    compute = compute or fake_compute_factory(kgrid)
    nproc = world.nproc
    logs = {}

    def worker(rank):
        mp = world.handle(rank)
        try:
            mp.initpass()
            logs[rank] = worker_subroutine(mp, compute, fault_tolerance=ft)
            mp.endpass()
        except Exception:
            pass

    threads = [threading.Thread(target=worker, args=(r,), daemon=True)
               for r in range(1, nproc)]
    for t in threads:
        t.start()
    if kill_rank_at is not None:
        rank, after = kill_rank_at
        timer = threading.Timer(after, world.kill_rank, args=(rank,))
        timer.daemon = True
        timer.start()
    mp0 = world.handle(0)
    mp0.initpass()
    master_log = master_subroutine(mp0, kgrid, fault_tolerance=ft)
    mp0.endpass()
    for t in threads:
        t.join(10.0)
    return master_log, logs


def assert_complete(master_log, kgrid=KGRID):
    assert sorted(h.ik for h in master_log.headers) == \
        list(range(1, kgrid.nk + 1))
    assert sorted(p.ik for p in master_log.payloads) == \
        list(range(1, kgrid.nk + 1))


class TestFaultFreeBaseline:
    def test_ft_run_without_faults_is_clean(self):
        world = FaultyWorld(InProcessWorld(4),
                            FaultPolicy(selector=lambda m, c: False))
        # non-instant compute so the heartbeat timers get to fire
        compute = fake_compute_factory(KGRID, delay=0.03)
        log, worker_logs = run_chaos(world, compute=compute)
        assert_complete(log)
        fr = log.fault
        assert fr is not None
        assert fr.dead_workers == []
        assert fr.reassignments == 0
        assert fr.corrupt_results == 0
        assert fr.orphan_payloads == 0
        assert fr.duplicate_results == 0
        assert not fr.any_faults
        assert fr.heartbeats_received > 0
        assert sum(wl.modes_done for wl in worker_logs.values()) == NK

    def test_legacy_run_has_no_fault_report(self):
        world = InProcessWorld(3)
        compute = fake_compute_factory(KGRID)
        logs = {}

        def worker(rank):
            mp = world.handle(rank)
            mp.initpass()
            logs[rank] = worker_subroutine(mp, compute)
            mp.endpass()

        threads = [threading.Thread(target=worker, args=(r,))
                   for r in (1, 2)]
        for t in threads:
            t.start()
        mp0 = world.handle(0)
        mp0.initpass()
        log = master_subroutine(mp0, KGRID)
        for t in threads:
            t.join(10.0)
        assert_complete(log)
        assert log.fault is None


class TestWorkerDeath:
    def test_killed_worker_is_quarantined_and_work_reassigned(self):
        world = FaultyWorld(InProcessWorld(4),
                            FaultPolicy(selector=lambda m, c: False))
        compute = fake_compute_factory(KGRID, delay=0.05)
        log, _ = run_chaos(world, compute=compute, kill_rank_at=(2, 0.06))
        assert_complete(log)
        fr = log.fault
        assert fr.dead_workers == [2]
        assert fr.reassignments >= 1
        assert fr.reassigned_modes >= 1
        assert fr.retries_by_tag.get("WORK", 0) >= 1
        assert fr.recovery_wall_seconds > 0.0

    def test_kill_via_fault_action_on_first_result(self):
        # the kill_rank action murders the sender of a selected message:
        # rank 2 dies the moment it ships its first header
        kill = FaultPolicy(
            selector=lambda m, c: m.tag == Tag.HEADER and m.source == 2,
            action="kill_rank", max_faults=1,
        )
        world = FaultyWorld(InProcessWorld(4), kill)
        compute = fake_compute_factory(KGRID, delay=0.02)
        log, _ = run_chaos(world, compute=compute)
        assert_complete(log)
        assert log.fault.dead_workers == [2]
        assert world.faults_for(kill) == 1
        assert world.dead_ranks == {2}

    def test_all_workers_lost_raises(self):
        world = FaultyWorld(InProcessWorld(3),
                            FaultPolicy(selector=lambda m, c: False))
        compute = fake_compute_factory(KGRID, delay=0.05)
        for rank in (1, 2):
            threading.Timer(0.05 * rank, world.kill_rank, (rank,)).start()
        logs = {}

        def worker(rank):
            mp = world.handle(rank)
            try:
                mp.initpass()
                logs[rank] = worker_subroutine(mp, compute,
                                               fault_tolerance=FT_FAST)
                mp.endpass()
            except Exception:
                pass

        threads = [threading.Thread(target=worker, args=(r,), daemon=True)
                   for r in (1, 2)]
        for t in threads:
            t.start()
        mp0 = world.handle(0)
        mp0.initpass()
        with pytest.raises(ProtocolError, match="all workers lost"):
            master_subroutine(mp0, KGRID, fault_tolerance=FT_FAST)


class TestLostAndCorruptResults:
    def test_dropped_headers_are_recovered_and_accounted(self):
        drop = FaultPolicy.every_nth(5, tags=[Tag.HEADER], action="drop")
        world = FaultyWorld(InProcessWorld(4), drop)
        log, _ = run_chaos(world)
        assert_complete(log)
        fr = log.fault
        n_dropped = world.faults_by_tag[int(Tag.HEADER)]
        assert n_dropped > 0
        # every dropped header leaves its payload orphaned, exactly once
        assert fr.orphan_payloads == n_dropped
        assert fr.ready_resyncs >= 1
        assert fr.retries_by_tag.get("WORK", 0) >= n_dropped

    def test_dropped_payloads_are_recovered(self):
        drop = FaultPolicy.every_nth(6, tags=[Tag.PAYLOAD], action="drop")
        world = FaultyWorld(InProcessWorld(4), drop)
        log, _ = run_chaos(world)
        assert_complete(log)
        fr = log.fault
        assert world.faults_by_tag[int(Tag.PAYLOAD)] > 0
        assert fr.payload_timeouts >= 1

    def test_delayed_results_are_absorbed(self):
        delay = FaultPolicy.every_nth(
            4, tags=[Tag.HEADER, Tag.PAYLOAD], action="delay",
            delay_seconds=0.05,
        )
        world = FaultyWorld(InProcessWorld(4), delay)
        log, _ = run_chaos(world)
        assert_complete(log)
        fr = log.fault
        assert world.faults_injected > 0
        # a delay inside the payload deadline costs nothing
        assert fr.dead_workers == []
        assert fr.corrupt_results == 0

    def test_corrupt_headers_are_detected_and_recomputed(self):
        corrupt = FaultPolicy.every_nth(6, tags=[Tag.HEADER],
                                        action="corrupt_payload")
        world = FaultyWorld(InProcessWorld(4), corrupt)
        log, _ = run_chaos(world)
        assert_complete(log)
        fr = log.fault
        n_corrupt = world.faults_by_tag[int(Tag.HEADER)]
        assert n_corrupt > 0
        assert fr.corrupt_results == n_corrupt
        # and none of the recorded headers carry garbled values
        for h in log.headers:
            assert h.k == pytest.approx(float(KGRID.k[h.ik - 1]))

    def test_corrupt_payloads_are_detected(self):
        corrupt = FaultPolicy.every_nth(6, tags=[Tag.PAYLOAD],
                                        action="corrupt_payload")
        world = FaultyWorld(InProcessWorld(4), corrupt)
        log, _ = run_chaos(world)
        assert_complete(log)
        fr = log.fault
        assert world.faults_by_tag[int(Tag.PAYLOAD)] > 0
        assert fr.corrupt_results >= 1
        for p in log.payloads:
            assert p.k == pytest.approx(float(KGRID.k[p.ik - 1]))

    def test_truncated_ready_messages_survive(self):
        # only the initial READY per worker is guaranteed, so truncate
        # every 2nd to land at least one fault with two workers
        trunc = FaultPolicy.every_nth(2, tags=[Tag.READY], action="truncate")
        world = FaultyWorld(InProcessWorld(3), trunc)
        log, _ = run_chaos(world)
        assert_complete(log)
        assert world.faults_by_tag[int(Tag.READY)] >= 1

    def test_retry_exhaustion_raises(self):
        # every header vanishes: the same mode keeps being reassigned
        # until its retry budget runs out
        drop_all = FaultPolicy(selector=lambda m, c: m.tag == Tag.HEADER,
                               action="drop")
        world = FaultyWorld(InProcessWorld(3), drop_all)
        ft = FaultTolerance(
            worker_timeout=0.2, heartbeat_interval=0.05, poll_seconds=0.02,
            payload_timeout=0.2, max_retries=2, backoff_base=0.01,
        )
        compute = fake_compute_factory(KGRID)
        logs = {}

        def worker(rank):
            mp = world.handle(rank)
            try:
                mp.initpass()
                logs[rank] = worker_subroutine(mp, compute,
                                               fault_tolerance=ft)
                mp.endpass()
            except Exception:
                pass

        threads = [threading.Thread(target=worker, args=(r,), daemon=True)
                   for r in (1, 2)]
        for t in threads:
            t.start()
        mp0 = world.handle(0)
        mp0.initpass()
        with pytest.raises(ProtocolError, match="max_retries"):
            master_subroutine(mp0, KGRID, fault_tolerance=ft)


class TestFaultPolicyAccounting:
    """Satellite: every fault action tallies faults_by_tag identically."""

    def _pump(self, policies, messages):
        """Deliver ``messages`` (tag, payload-length) from rank 1 to
        rank 0 through a FaultyWorld and return it."""
        world = FaultyWorld(InProcessWorld(2), policies)
        h0, h1 = world.handle(0), world.handle(1)
        h0.initpass()
        h1.initpass()
        for tag, n in messages:
            h1.mysendreal(np.arange(float(n)), tag, 0)
        return world, h0

    @pytest.mark.parametrize("action", [
        "drop", "duplicate", "truncate", "retag", "delay", "hang",
        "corrupt_payload",
    ])
    def test_every_action_counts_once_per_injection(self, action):
        pol = FaultPolicy(selector=lambda m, c: m.tag == 3,
                          action=action, max_faults=2, delay_seconds=0.01)
        world, h0 = self._pump(pol, [(3, 4)] * 5 + [(2, 1)] * 3)
        assert world.faults_injected == 2
        assert world.faults_by_tag == {3: 2}
        assert world.faults_for(pol) == 2
        assert world.delivery_count == 8
        if action == "hang":
            assert len(world.held) == 2

    def test_kill_rank_counts_once_then_swallows_the_sender(self):
        pol = FaultPolicy(selector=lambda m, c: m.tag == 3,
                          action="kill_rank", max_faults=2)
        world = FaultyWorld(InProcessWorld(2), pol)
        h0, h1 = world.handle(0), world.handle(1)
        h0.initpass()
        h1.initpass()
        h1.mysendreal(np.arange(2.0), 2, 0)
        h1.mysendreal(np.arange(4.0), 3, 0)  # first tag-3: rank 1 dies
        with pytest.raises(MessagePassingError, match="killed"):
            h1.mysendreal(np.arange(4.0), 3, 0)
        assert world.faults_injected == 1
        assert world.faults_by_tag == {3: 1}
        assert world.faults_for(pol) == 1
        assert world.dead_ranks == {1}

    def test_exact_counts_per_action_type(self):
        """The regression pin: a fixed message stream through a fixed
        policy stack must inject exactly these counts per action."""
        drop = FaultPolicy(selector=lambda m, c: m.tag == 4,
                           action="drop", max_faults=3)
        dup = FaultPolicy(selector=lambda m, c: m.tag == 5,
                          action="duplicate", max_faults=2)
        trunc = FaultPolicy(selector=lambda m, c: m.tag == 2,
                            action="truncate", max_faults=1)
        world, h0 = self._pump(
            [drop, dup, trunc],
            [(4, 21)] * 5 + [(5, 24)] * 4 + [(2, 1)] * 3 + [(6, 1)] * 2,
        )
        assert world.faults_for(drop) == 3
        assert world.faults_for(dup) == 2
        assert world.faults_for(trunc) == 1
        assert world.faults_injected == 6
        assert world.faults_by_tag == {4: 3, 5: 2, 2: 1}
        # and the deliveries that actually landed reflect the actions:
        # 5-3=2 headers, 4+2=6 payloads, 3 readys (one short), 2 stops
        def drain(tag):
            out = []
            while h0.myprobe(tag, 1, timeout=0.05) is not None:
                out.append(h0.myrecvraw(tag, 1))
            return out
        assert len(drain(4)) == 2
        assert len(drain(5)) == 6
        readys = drain(2)
        assert len(readys) == 3
        assert sorted(r.size for r in readys) == [0, 1, 1]
        assert len(drain(6)) == 2

    def test_every_nth_is_deterministic_per_tag(self):
        pol = FaultPolicy.every_nth(3, tags=[4], action="drop")
        world, _ = self._pump(pol, [(4, 2), (2, 1)] * 9)
        # 9 tag-4 deliveries, every 3rd faulted -> exactly 3
        assert world.faults_by_tag == {4: 3}
        assert world.faults_injected == 3


class TestEscalationLadder:
    def test_ladder_levels(self):
        cfg = LingerConfig(rtol=1e-5)
        rungs = list(escalation_ladder(cfg))
        assert [lvl for lvl, _ in rungs] == [0, 1, 2]
        assert rungs[0][1] is cfg
        assert rungs[1][1].first_step == LADDER_FIRST_STEP
        assert rungs[1][1].rtol == cfg.rtol
        assert rungs[2][1].first_step == LADDER_FIRST_STEP
        assert rungs[2][1].rtol == pytest.approx(
            cfg.rtol * LADDER_RTOL_SCALE)

    def test_succeeds_at_first_working_rung(self):
        cfg = LingerConfig()
        calls = []

        def attempt(c):
            calls.append(c)
            if len(calls) < 3:
                raise IntegrationError("boom")
            return "ok"

        result, level = run_with_ladder(cfg, attempt)
        assert result == "ok"
        assert level == 2
        assert len(calls) == 3

    def test_level_zero_success_reports_no_degradation(self):
        result, level = run_with_ladder(LingerConfig(), lambda c: "fine")
        assert (result, level) == ("fine", 0)

    def test_exhausted_ladder_reraises(self):
        def attempt(c):
            raise IntegrationError("always")

        with pytest.raises(IntegrationError, match="always"):
            run_with_ladder(LingerConfig(), attempt)

    def test_disabled_ladder_is_single_shot(self):
        calls = []

        def attempt(c):
            calls.append(c)
            raise IntegrationError("boom")

        with pytest.raises(IntegrationError):
            run_with_ladder(LingerConfig(), attempt, enabled=False)
        assert len(calls) == 1

    def test_degraded_mode_reported_in_fault_report(self):
        # a compute that returns retry_level=2 must land in
        # degraded_modes with its ik and level
        base = fake_compute_factory(KGRID)

        def degraded_compute(ik):
            header, payload = base(ik)
            if ik == 3:
                from dataclasses import replace
                header = replace(header, retry_level=2)
            return header, payload

        world = FaultyWorld(InProcessWorld(3),
                            FaultPolicy(selector=lambda m, c: False))
        log, _ = run_chaos(world, compute=degraded_compute)
        assert_complete(log)
        assert log.fault.degraded_modes == [{"ik": 3, "level": 2}]
        recorded = {h.ik: h.retry_level for h in log.headers}
        assert recorded[3] == 2
        assert all(lvl == 0 for ik, lvl in recorded.items() if ik != 3)


class TestJournalHardening:
    """Satellite: crash-safe append, replay survives any garbage tail."""

    def _write_good(self, path, iks):
        journal = ModeJournal(path)
        compute = fake_compute_factory(KGRID)
        for ik in iks:
            journal.append(*compute(ik))
        return journal

    def test_roundtrip(self, tmp_path):
        journal = self._write_good(tmp_path / "j.txt", [1, 2, 3])
        done = journal.replay()
        assert sorted(done) == [1, 2, 3]
        h, p = done[2]
        assert h.ik == 2 and p.ik == 2
        assert p.f_gamma == pytest.approx(np.full(9, 2.0))

    @pytest.mark.parametrize("tail", [
        "garbage with no pipe",
        "1.0 2.0 | 3.0",                      # short on both sides
        "1.0 2.0 three | 4.0 5.0",            # non-numeric token
        " | ",                                 # empty halves
        "nan " * 21 + "| " + "nan " * 24,     # NaN flood
        "inf " * 21 + "| " + "inf " * 24,     # Inf flood (OverflowError trap)
        "0.0 " * 21 + "| " + "0.0 " * 24,     # ik=0: not a real mode
    ])
    def test_replay_skips_garbage_tail(self, tmp_path, tail):
        path = tmp_path / "j.txt"
        journal = self._write_good(path, [1, 2])
        with open(path, "a") as fh:
            fh.write(tail + "\n")
        done = journal.replay()
        assert sorted(done) == [1, 2]

    def test_replay_skips_truncated_last_line(self, tmp_path):
        path = tmp_path / "j.txt"
        journal = self._write_good(path, [1, 2, 3])
        text = path.read_text()
        # tear the final line mid-token, as a crash would
        path.write_text(text[: len(text) - 40])
        done = journal.replay()
        assert sorted(done) == [1, 2]

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert ModeJournal(tmp_path / "absent.txt").replay() == {}


class TestFaultReportSerialization:
    def _sample(self):
        fr = FaultReport(
            dead_workers=[2], reassignments=1, reassigned_modes=3,
            retries_by_tag={"WORK": 3, "READY": 1}, ready_resyncs=2,
            corrupt_results=1, payload_timeouts=1, orphan_payloads=2,
            duplicate_results=1, unexpected_tags=0,
            degraded_modes=[{"ik": 5, "level": 2}],
            recovery_wall_seconds=0.25, heartbeats_received=40,
        )
        return fr

    def test_roundtrip_through_runreport_json(self):
        report = RunReport(meta={"driver": "plinger"}, fault=self._sample())
        loaded = RunReport.from_json(report.to_json())
        assert loaded.fault is not None
        assert loaded.fault == self._sample()
        assert loaded.totals["n_dead_workers"] == 1
        assert loaded.totals["n_retries"] == 4

    def test_reports_without_fault_section_load_unchanged(self):
        report = RunReport(meta={"driver": "linger"})
        d = report.to_dict()
        assert d["fault"] is None
        loaded = RunReport.from_dict(d)
        assert loaded.fault is None
        assert loaded.totals["n_dead_workers"] == 0

    def test_helpers(self):
        fr = self._sample()
        assert fr.total_retries == 4
        assert fr.any_faults
        fr2 = FaultReport()
        assert not fr2.any_faults
        fr2.bump_retry("WORK")
        fr2.bump_retry("WORK", 2)
        assert fr2.retries_by_tag == {"WORK": 3}


class TestEndToEndChaos:
    """The acceptance gate: real physics, one dead worker, dropped
    results — the spectrum must match the fault-free run exactly."""

    NK_E2E = 8

    @pytest.fixture(scope="class")
    def e2e_setup(self, scdm, bg_scdm, thermo_scdm):
        kgrid = KGrid.from_k(np.geomspace(3e-4, 0.03, self.NK_E2E))
        config = LingerConfig(rtol=1e-4, record_sources=False,
                              keep_mode_results=False)
        golden, _ = run_plinger(
            scdm, kgrid, config, nproc=3, backend="inprocess",
            background=bg_scdm, thermo=thermo_scdm,
        )
        return kgrid, config, golden

    def test_kill_one_of_four_workers_plus_result_drops(
            self, scdm, bg_scdm, thermo_scdm, e2e_setup):
        kgrid, config, golden = e2e_setup
        # rank 2 dies the moment it ships its first result; on top,
        # a ~5% loss rate on the result stream (every 5th header, capped
        # at 2 so an unlucky retransmission cannot be re-dropped forever)
        kill = FaultPolicy(
            selector=lambda m, c: m.tag == Tag.HEADER and m.source == 2,
            action="kill_rank", max_faults=1,
        )
        drop = FaultPolicy.every_nth(5, tags=[Tag.HEADER], action="drop",
                                     max_faults=2)
        world = FaultyWorld(InProcessWorld(5), [kill, drop])
        ft = FaultTolerance(
            worker_timeout=1.0, heartbeat_interval=0.25, missed_heartbeats=4,
            poll_seconds=0.02, payload_timeout=2.0, max_retries=10,
        )
        result, stats = run_plinger(
            scdm, kgrid, config, nproc=5, backend="inprocess",
            background=bg_scdm, thermo=thermo_scdm,
            fault_tolerance=ft, world=world,
        )
        fr = stats.fault_report
        assert fr is not None
        # exact accounting against the injected faults
        assert fr.dead_workers == [2]
        assert world.faults_for(kill) == 1
        n_dropped = world.faults_for(drop)
        assert fr.orphan_payloads == n_dropped
        assert fr.reassignments >= 1
        assert fr.corrupt_results == 0
        # and the physics is untouched: golden match at rtol=1e-8
        for h_f, h_g in zip(result.headers, golden.headers):
            assert h_f.ik == h_g.ik
            assert h_f.delta_c == pytest.approx(h_g.delta_c, rel=1e-8)
            assert h_f.delta_g == pytest.approx(h_g.delta_g, rel=1e-8)
            assert h_f.eta == pytest.approx(h_g.eta, rel=1e-8)
        for p_f, p_g in zip(result.payloads, golden.payloads):
            np.testing.assert_allclose(p_f.f_gamma, p_g.f_gamma, rtol=1e-8)
            np.testing.assert_allclose(p_f.g_gamma, p_g.g_gamma, rtol=1e-8)

    def test_procs_survives_a_real_sigkill(
            self, scdm, bg_scdm, thermo_scdm, e2e_setup):
        """Forked-process transport: SIGKILL an actual worker process
        mid-run; the master must quarantine it and finish the grid."""
        import os
        import signal

        from repro.mp.backends.procs import ProcsWorld

        kgrid, config, golden = e2e_setup
        world = ProcsWorld(4)
        ft = FaultTolerance(
            worker_timeout=2.0, heartbeat_interval=0.25, missed_heartbeats=4,
            poll_seconds=0.02, payload_timeout=5.0, max_retries=5,
        )

        def assassin():
            # wait for the fork, give the victim time to take work,
            # then kill it for real
            for _ in range(400):
                pid = world.child_pid(2)
                if pid is not None:
                    break
                time.sleep(0.01)
            else:
                return
            time.sleep(0.5)
            os.kill(pid, signal.SIGKILL)

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        result, stats = run_plinger(
            scdm, kgrid, config, nproc=4, backend="procs",
            background=bg_scdm, thermo=thermo_scdm,
            fault_tolerance=ft, world=world,
        )
        killer.join(10.0)
        fr = stats.fault_report
        assert fr.dead_workers == [2]
        assert fr.reassigned_modes >= 1
        for p_f, p_g in zip(result.payloads, golden.payloads):
            np.testing.assert_allclose(p_f.f_gamma, p_g.f_gamma, rtol=1e-8)

    def test_fault_report_lands_in_telemetry(
            self, scdm, bg_scdm, thermo_scdm, e2e_setup):
        from repro.telemetry import Telemetry

        kgrid, config, golden = e2e_setup
        drop = FaultPolicy.every_nth(6, tags=[Tag.HEADER], action="drop",
                                     max_faults=1)
        world = FaultyWorld(InProcessWorld(3), drop)
        ft = FaultTolerance(worker_timeout=1.0, heartbeat_interval=0.25,
                            missed_heartbeats=4, poll_seconds=0.02,
                            payload_timeout=2.0, max_retries=10)
        telemetry = Telemetry()
        result, stats = run_plinger(
            scdm, kgrid, config, nproc=3, backend="inprocess",
            background=bg_scdm, thermo=thermo_scdm,
            fault_tolerance=ft, world=world, telemetry=telemetry,
        )
        report = telemetry.build_report()
        assert report.fault is stats.fault_report
        assert report.meta["fault_tolerance"] is True
        # survives the JSON wire
        loaded = RunReport.from_json(report.to_json())
        assert loaded.fault.orphan_payloads == \
            stats.fault_report.orphan_payloads
        np.testing.assert_allclose(
            result.payloads[0].f_gamma, golden.payloads[0].f_gamma,
            rtol=1e-8,
        )


class TestCacheTagFaults:
    """Satellite: the precompute-table broadcast (Tag.CACHE) under the
    same FaultyWorld accounting as the result stream.  A corrupted or
    dropped manifest must degrade to local table builds — bit-identical
    physics — and tally under ``faults_by_tag``."""

    NK_CACHE = 5

    @pytest.fixture(scope="class")
    def cache_setup(self, scdm, bg_scdm, thermo_scdm):
        kgrid = KGrid.from_k(np.geomspace(3e-4, 0.03, self.NK_CACHE))
        config = LingerConfig(rtol=1e-4, record_sources=False,
                              keep_mode_results=False)
        golden, _ = run_plinger(
            scdm, kgrid, config, nproc=3, backend="inprocess",
            background=bg_scdm, thermo=thermo_scdm,
        )
        return kgrid, config, golden

    def _ft(self):
        return FaultTolerance(
            worker_timeout=1.0, heartbeat_interval=0.25,
            missed_heartbeats=4, poll_seconds=0.02, payload_timeout=2.0,
            max_retries=2, backoff_base=0.01,
        )

    def test_faults_by_tag_name_maps_tags(self):
        pol = FaultPolicy(selector=lambda m, c: m.tag == int(Tag.CACHE),
                          action="corrupt_payload")
        world = FaultyWorld(InProcessWorld(2), pol)
        world.faults_by_tag[int(Tag.CACHE)] = 3
        world.faults_by_tag[9999] = 1  # unknown tag: falls back to str
        assert world.faults_by_tag_name == {"CACHE": 3, "9999": 1}

    def test_corrupt_manifest_falls_back_to_local_build(
            self, scdm, bg_scdm, thermo_scdm, cache_setup, tmp_path):
        from repro.cache import PrecomputeCache
        from repro.telemetry import Telemetry

        kgrid, config, golden = cache_setup
        corrupt = FaultPolicy.every_nth(1, tags=[Tag.CACHE],
                                        action="corrupt_payload")
        world = FaultyWorld(InProcessWorld(3), corrupt)
        telemetry = Telemetry()
        result, _stats = run_plinger(
            scdm, kgrid, config, nproc=3, backend="inprocess",
            background=bg_scdm, thermo=thermo_scdm,
            cache=PrecomputeCache(tmp_path / "cache"),
            fault_tolerance=self._ft(), world=world, telemetry=telemetry,
        )
        # both workers saw a garbled manifest: accounted on Tag.CACHE
        assert world.faults_by_tag == {int(Tag.CACHE): 2}
        assert world.faults_by_tag_name == {"CACHE": 2}
        # each retried the attach, then built tables locally
        dm = telemetry.degradation
        assert dm is not None
        assert dm.count("cache", "attach_fallback") == 2
        # local builds are deterministic: physics bit-identical
        for p_f, p_g in zip(result.payloads, golden.payloads):
            np.testing.assert_allclose(p_f.f_gamma, p_g.f_gamma,
                                       rtol=1e-8)
            np.testing.assert_allclose(p_f.g_gamma, p_g.g_gamma,
                                       rtol=1e-8)

    def test_dropped_manifest_times_out_to_local_build(
            self, scdm, bg_scdm, thermo_scdm, cache_setup, tmp_path):
        from repro.cache import PrecomputeCache
        from repro.telemetry import Telemetry

        kgrid, config, golden = cache_setup
        drop = FaultPolicy.every_nth(1, tags=[Tag.CACHE], action="drop",
                                     max_faults=1)
        world = FaultyWorld(InProcessWorld(3), drop)
        telemetry = Telemetry()
        result, _stats = run_plinger(
            scdm, kgrid, config, nproc=3, backend="inprocess",
            background=bg_scdm, thermo=thermo_scdm,
            cache=PrecomputeCache(tmp_path / "cache"),
            fault_tolerance=self._ft(), world=world, telemetry=telemetry,
        )
        assert world.faults_by_tag == {int(Tag.CACHE): 1}
        assert world.faults_by_tag_name == {"CACHE": 1}
        # one worker waited out the probe deadline and built locally;
        # the other attached the shared block normally
        dm = telemetry.degradation
        assert dm is not None
        assert dm.count("cache", "attach_timeout") == 1
        for p_f, p_g in zip(result.payloads, golden.payloads):
            np.testing.assert_allclose(p_f.f_gamma, p_g.f_gamma,
                                       rtol=1e-8)
