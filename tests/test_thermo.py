"""Recombination and the thermal history."""

import numpy as np
import pytest

from repro import constants as const
from repro.thermo import PeeblesRates, saha_electron_fraction


class TestSaha:
    def test_fully_ionized_hot(self, scdm):
        x_e, x_h, x_he2, x_he3 = saha_electron_fraction(
            1e5, 1e-4, f_he=0.02
        )
        assert x_h == pytest.approx(1.0, abs=1e-6)
        assert x_he3 == pytest.approx(1.0, abs=1e-4)
        assert x_e == pytest.approx(1.0 + 2 * 0.02, rel=1e-4)

    def test_neutral_cold(self):
        x_e, x_h, x_he2, x_he3 = saha_electron_fraction(1500.0, 1.0, 0.02)
        assert x_h < 1e-4
        assert x_e < 1e-3

    def test_helium_recombines_before_hydrogen(self):
        # at ~5000 K He+ -> He0 is essentially done but H is still ionized
        x_e, x_h, x_he2, x_he3 = saha_electron_fraction(5000.0, 0.2, 0.02)
        assert x_h > 0.95
        assert x_he2 < 0.05

    def test_he_double_ionized_very_hot(self):
        _, _, x_he2, x_he3 = saha_electron_fraction(5e4, 1e-2, 0.02)
        assert x_he3 > 0.9

    def test_monotone_in_temperature(self):
        xs = [
            saha_electron_fraction(t, 0.5, 0.02)[0]
            for t in (3000, 4000, 6000, 10000)
        ]
        assert all(a < b for a, b in zip(xs, xs[1:]))


class TestPeeblesRates:
    def test_recombination_coefficient_scale(self):
        # alpha^(2) ~ 5e-13 cm^3/s at 10^4 K (Peebles form)
        r = PeeblesRates.at(1e4, 1.0, 0.5, 1e-13)
        assert 1e-13 < r.alpha2 < 1e-12

    def test_c_factor_bounded(self):
        r = PeeblesRates.at(3500.0, 100.0, 0.1, 1e-13)
        assert 0.0 < r.c_peebles <= 1.0

    def test_ionization_negligible_when_cold(self):
        r = PeeblesRates.at(500.0, 100.0, 0.01, 1e-13)
        assert r.beta < 1e-100

    def test_beta2_larger_than_beta(self):
        r = PeeblesRates.at(4000.0, 100.0, 0.5, 1e-13)
        assert r.beta2 > r.beta


class TestThermalHistory:
    def test_recombination_redshift(self, thermo_scdm):
        assert 1000 < thermo_scdm.z_rec < 1250

    def test_tau_rec_matches_paper_movie(self, thermo_scdm):
        # the paper's movie ends "shortly after recombination, at
        # conformal time 250 Mpc"
        assert 200 < thermo_scdm.tau_rec < 280

    def test_xe_fully_ionized_early(self, thermo_scdm, scdm):
        f_he = scdm.y_he / (4 * (1 - scdm.y_he))
        assert float(thermo_scdm.x_e(1e-7)) == pytest.approx(
            1 + 2 * f_he, rel=1e-3
        )

    def test_xe_freezeout(self, thermo_scdm):
        xe0 = float(thermo_scdm.x_e(1.0))
        assert 1e-5 < xe0 < 1e-2

    def test_xe_monotone_through_recombination(self, thermo_scdm):
        a = np.geomspace(2e-4, 2e-2, 60)
        xe = thermo_scdm.x_e(a)
        assert np.all(np.diff(xe) < 1e-6)

    def test_visibility_normalized(self, thermo_scdm, bg_scdm):
        tau = np.linspace(thermo_scdm._tau[0], bg_scdm.tau0, 20000)
        integral = np.trapezoid(thermo_scdm.visibility(tau), tau)
        assert integral == pytest.approx(1.0, abs=0.002)

    def test_visibility_peaks_at_tau_rec(self, thermo_scdm, bg_scdm):
        tau = np.linspace(50, 600, 4000)
        g = thermo_scdm.visibility(tau)
        assert tau[np.argmax(g)] == pytest.approx(thermo_scdm.tau_rec,
                                                  abs=5.0)

    def test_optical_depth_monotone_decreasing(self, thermo_scdm, bg_scdm):
        tau = np.linspace(100, bg_scdm.tau0, 500)
        kappa = thermo_scdm.optical_depth(tau)
        assert np.all(np.diff(kappa) <= 1e-10)
        assert abs(float(kappa[-1])) < 1e-8

    def test_baryons_track_photons_early(self, thermo_scdm, scdm):
        a = 1e-5
        assert float(thermo_scdm.t_baryon(a)) == pytest.approx(
            scdm.t_cmb / a, rel=1e-4
        )

    def test_baryons_cool_adiabatically_late(self, thermo_scdm, scdm):
        # after decoupling T_b ~ a^-2, so T_b << T_gamma today
        assert float(thermo_scdm.t_baryon(1.0)) < 0.1 * scdm.t_cmb

    def test_opacity_scaling_preionization(self, thermo_scdm):
        # x_e = const -> kappa' ~ a^-2
        k1 = float(thermo_scdm.opacity(1e-5))
        k2 = float(thermo_scdm.opacity(2e-5))
        assert k1 / k2 == pytest.approx(4.0, rel=1e-2)

    def test_sound_speed_small_and_positive(self, thermo_scdm):
        a = np.geomspace(1e-6, 1.0, 30)
        cs2 = thermo_scdm.cs2(a)
        assert np.all(cs2 > 0)
        assert np.all(cs2 < 1e-6)  # baryon sound speed << c

    def test_exp_minus_kappa_limits(self, thermo_scdm, bg_scdm):
        assert float(thermo_scdm.exp_minus_kappa(60.0)) < 1e-8
        assert float(thermo_scdm.exp_minus_kappa(bg_scdm.tau0)) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_mdm_recombination_similar(self, thermo_mdm):
        # massive neutrinos barely move recombination
        assert 1000 < thermo_mdm.z_rec < 1250
