"""Frozen legacy per-term RHS: the pre-operator PerturbationSystem.

A verbatim copy of ``repro.perturbations.system`` as it stood before the
coefficient-driven operator refactor (PR 7), kept as the *reference
implementation* the property tests compare against: the operator-driven
scalar and lane kernels must reproduce this per-term assembly bitwise
on the python kernel.  Do not "fix" or modernise this file — its value
is that it does not change.
"""


from __future__ import annotations

import math

import numpy as np

from repro.background import Background, dlnf0_dlnq, fermi_dirac_f0
from repro.background.nu_massive import I_RHO_MASSLESS, momentum_grid
from repro.errors import ParameterError
from repro.params import CosmologyParams
from repro.thermo import ThermalHistory
from repro.util.fastspline import UniformGridCubic
from repro.perturbations.state import StateLayout

__all__ = ["ReferencePerturbationSystem"]


class ReferencePerturbationSystem:
    """RHS provider for one comoving wavenumber.

    Parameters
    ----------
    background, thermo:
        Precomputed background / thermal history (shared across modes).
    k:
        Comoving wavenumber [Mpc^-1].
    layout:
        The state-vector layout (multipole cutoffs, momentum nodes).
    q_max:
        Upper edge of the massive-neutrino momentum grid (units of
        T_nu0).
    """

    def __init__(
        self,
        background: Background,
        thermo: ThermalHistory,
        k: float,
        layout: StateLayout,
        q_max: float = 18.0,
    ) -> None:
        if k <= 0.0:
            raise ParameterError("k must be positive")
        p: CosmologyParams = background.params
        self.params = p
        self.background = background
        self.thermo = thermo
        self.k = float(k)
        self.k2 = self.k * self.k
        self.layout = layout

        h0sq = p.h0_mpc**2
        # (8 pi G / 3) a^2 rho_i prefactors (divide by the a-scaling at
        # run time): grho83_i = pref_i / a^n.
        self._gr_m = h0sq * (p.omega_c + p.omega_b)
        self._gr_c = h0sq * p.omega_c
        self._gr_b = h0sq * p.omega_b
        self._gr_g = h0sq * p.omega_gamma
        self._gr_nl = h0sq * p.omega_nu_massless
        self._gr_lam = h0sq * p.omega_lambda
        self._gr_k = h0sq * p.omega_k
        self._r_coef = 4.0 * p.omega_gamma / (3.0 * p.omega_b)  # R = _r_coef/a

        # Fast thermo lookups on the (uniform) ln-a grid:
        # kappa' = xe * n_H0 sigma_T Mpc / a^2 and the baryon sound speed.
        lna = thermo._lna
        kap = thermo._opacity_from_xe(thermo._a, thermo._x_e_table)
        self._ln_kap_spline = UniformGridCubic(lna, np.log(np.maximum(kap, 1e-300)))
        cs2_tab = np.exp(thermo._cs2_spline(lna))
        self._ln_cs2_spline = UniformGridCubic(lna, np.log(np.maximum(cs2_tab, 1e-300)))

        # Massive neutrinos ------------------------------------------------
        self.nq = layout.nq
        if self.nq > 0:
            if background.nu_tables is None:
                raise ParameterError(
                    "layout has a massive sector but the background has no "
                    "massive neutrinos"
                )
            self._gr_nu_rel = (
                h0sq
                * p.n_nu_massive
                * (7.0 / 8.0)
                * (4.0 / 11.0) ** (4.0 / 3.0)
                * p.omega_gamma
            )
            self._x0 = background.nu_tables.x0
            q, w = momentum_grid(self.nq, q_max=q_max)
            self.q_nodes = q
            f0 = fermi_dirac_f0(q)
            self._dlnf = dlnf0_dlnq(q)
            self._w_rho = w * q**2 * f0 / I_RHO_MASSLESS
            self._w_q3 = w * q**3 * f0 / I_RHO_MASSLESS
            self._w_q4 = w * q**4 * f0 / I_RHO_MASSLESS
            # uniform-in-ln(x) background factor splines
            tab = background.nu_tables
            lx = np.linspace(math.log(tab.x_min), math.log(tab.x_max), 600)
            self._rho_fac = UniformGridCubic(lx, tab._log_rho_spline(lx))
            self._p_fac = UniformGridCubic(lx, tab._log_p_spline(lx))
            lm = layout.lmax_massive_nu
            ell = np.arange(lm + 1, dtype=float)
            self._mnu_lo = ell / (2.0 * ell + 1.0)
            self._mnu_hi = (ell + 1.0) / (2.0 * ell + 1.0)
        else:
            self._gr_nu_rel = 0.0
            self.q_nodes = np.empty(0)

        # Hierarchy advection coefficients (include the factor k).
        lg = layout.lmax_photon
        ell = np.arange(lg + 1, dtype=float)
        self._g_lo = self.k * ell / (2.0 * ell + 1.0)
        self._g_hi = self.k * (ell + 1.0) / (2.0 * ell + 1.0)
        ln = layout.lmax_nu
        ell = np.arange(ln + 1, dtype=float)
        self._n_lo = self.k * ell / (2.0 * ell + 1.0)
        self._n_hi = self.k * (ell + 1.0) / (2.0 * ell + 1.0)

        self._dy = np.zeros(layout.n_state)

    # ------------------------------------------------------------------
    # Background pieces (scalar, hot path)
    # ------------------------------------------------------------------

    def _grho83(self, a: float) -> float:
        """(8 pi G / 3) a^2 rho_total [Mpc^-2]."""
        g = (
            self._gr_m / a
            + (self._gr_g + self._gr_nl) / (a * a)
            + self._gr_lam * a * a
        )
        if self.nq > 0:
            g += self._gr_nu_rel / (a * a) * self._rho_factor(a)
        return g

    def _rho_factor(self, a: float) -> float:
        return math.exp(self._rho_fac(math.log(a * self._x0))) / I_RHO_MASSLESS

    def _pressure_factor(self, a: float) -> float:
        return 3.0 * math.exp(self._p_fac(math.log(a * self._x0))) / I_RHO_MASSLESS

    def _gpres83(self, a: float) -> float:
        """(8 pi G / 3) a^2 p_total [Mpc^-2]."""
        g = (self._gr_g + self._gr_nl) / (3.0 * a * a) - self._gr_lam * a * a
        if self.nq > 0:
            g += (
                self._gr_nu_rel
                / (a * a)
                * self._pressure_factor(a)
                / 3.0
            )
        return g

    def conformal_hubble(self, a: float) -> float:
        return math.sqrt(self._grho83(a) + self._gr_k)

    def opacity(self, a: float) -> float:
        """Thomson opacity kappa' [Mpc^-1] (fast scalar path)."""
        return math.exp(self._ln_kap_spline(math.log(a)))

    def cs2(self, a: float) -> float:
        return math.exp(self._ln_cs2_spline(math.log(a)))

    # ------------------------------------------------------------------
    # Shared source sums
    # ------------------------------------------------------------------

    def nu_eps(self, a: float) -> np.ndarray | None:
        """Comoving energy eps = sqrt(q^2 + (a m/T)^2) per momentum node.

        Every massive-neutrino source sum needs this; the RHS computes
        it once per call and passes it down instead of re-evaluating the
        sqrt in each sector.
        """
        if self.nq == 0:
            return None
        return np.sqrt(self.q_nodes**2 + (a * self._x0) ** 2)

    def _metric_sources(self, y: np.ndarray, a: float, hc: float,
                        eps: np.ndarray | None = None):
        """hdot and etadot from the Einstein constraint equations.

        Returns (hdot, etadot, gdrho, gdq) where gdrho = 4 pi G a^2
        delta rho and gdq = 4 pi G a^2 (rho + p) theta.
        """
        lo = self.layout
        fg = y[lo.sl_fg]
        nl = y[lo.sl_nl]
        inv_a = 1.0 / a
        inv_a2 = inv_a * inv_a
        gdrho = 1.5 * (
            (self._gr_c * y[lo.DELTA_C] + self._gr_b * y[lo.DELTA_B]) * inv_a
            + (self._gr_g * fg[0] + self._gr_nl * nl[0]) * inv_a2
        )
        theta_g = 0.75 * self.k * fg[1]
        theta_n = 0.75 * self.k * nl[1]
        gdq = 1.5 * (
            self._gr_b * y[lo.THETA_B] * inv_a
            + (4.0 / 3.0) * (self._gr_g * theta_g + self._gr_nl * theta_n) * inv_a2
        )
        if self.nq > 0:
            psi = lo.psi_matrix(y)
            if eps is None:
                eps = self.nu_eps(a)
            gdrho += 1.5 * self._gr_nu_rel * inv_a2 * float(
                (self._w_rho * eps) @ psi[:, 0]
            )
            gdq += 1.5 * self._gr_nu_rel * inv_a2 * self.k * float(
                self._w_q3 @ psi[:, 1]
            )
        hdot = 2.0 * (self.k2 * y[lo.ETA] + gdrho) / hc
        etadot = gdq / self.k2
        return hdot, etadot, gdrho, gdq

    def shear_sum(self, y: np.ndarray, a: float, sigma_g: float,
                  eps: np.ndarray | None = None) -> float:
        """4 pi G a^2 (rho + p) sigma summed over species [Mpc^-2].

        ``sigma_g`` is passed in because its value differs between the
        tight-coupling and full phases.
        """
        lo = self.layout
        inv_a2 = 1.0 / (a * a)
        sigma_n = 0.5 * y[lo.sl_nl][2]
        gshear = 1.5 * (4.0 / 3.0) * (
            self._gr_g * sigma_g + self._gr_nl * sigma_n
        ) * inv_a2
        if self.nq > 0:
            psi = lo.psi_matrix(y)
            if eps is None:
                eps = self.nu_eps(a)
            gshear += 1.5 * self._gr_nu_rel * inv_a2 * (2.0 / 3.0) * float(
                (self._w_q4 / eps) @ psi[:, 2]
            )
        return gshear

    def sigma_gamma_tca(self, theta_g: float, hdot: float, etadot: float,
                        kappa_dot: float) -> float:
        """Quasi-static photon shear in tight coupling (with polarization).

        Derived from the F2/G0/G2 quasi-equilibrium:
        sigma_g = (2/(3 kappa')) [ (8/15) theta_g + (4/15) hdot + (8/5) etadot ].
        """
        return (2.0 / (3.0 * kappa_dot)) * (
            (8.0 / 15.0) * theta_g + (4.0 / 15.0) * hdot + (8.0 / 5.0) * etadot
        )

    # ------------------------------------------------------------------
    # Sector fillers (shared by both RHS variants)
    # ------------------------------------------------------------------

    def _fill_neutrinos(self, y, dy, tau, hdot, etadot):
        lo = self.layout
        nl = y[lo.sl_nl]
        dnl = dy[lo.sl_nl]
        lm = lo.lmax_nu
        dnl[1:lm] = self._n_lo[1:lm] * nl[0 : lm - 1] - self._n_hi[1:lm] * nl[2 : lm + 1]
        dnl[0] = -self.k * nl[1] - (2.0 / 3.0) * hdot
        dnl[2] += (4.0 / 15.0) * hdot + (8.0 / 5.0) * etadot
        dnl[lm] = self.k * nl[lm - 1] - (lm + 1.0) / tau * nl[lm]

    def _fill_massive_nu(self, y, dy, tau, a, hdot, etadot, eps=None):
        lo = self.layout
        if lo.nq == 0:
            return
        psi = lo.psi_matrix(y)
        dpsi = dy[lo.sl_psi].reshape(lo.nq, lo.lmax_massive_nu + 1)
        lm = lo.lmax_massive_nu
        if eps is None:
            eps = self.nu_eps(a)
        qk_eps = self.k * self.q_nodes / eps  # (nq,)
        dpsi[:, 1:lm] = qk_eps[:, None] * (
            self._mnu_lo[1:lm] * psi[:, 0 : lm - 1]
            - self._mnu_hi[1:lm] * psi[:, 2 : lm + 1]
        )
        dpsi[:, 0] = -qk_eps * psi[:, 1] + (hdot / 6.0) * self._dlnf
        dpsi[:, 2] += -((1.0 / 15.0) * hdot + (2.0 / 5.0) * etadot) * self._dlnf
        dpsi[:, lm] = qk_eps * psi[:, lm - 1] - (lm + 1.0) / tau * psi[:, lm]

    # ------------------------------------------------------------------
    # Full RHS
    # ------------------------------------------------------------------

    def rhs_full(self, tau: float, y: np.ndarray) -> np.ndarray:
        lo = self.layout
        dy = self._dy
        dy[:] = 0.0
        a = y[lo.A]
        hc = self.conformal_hubble(a)
        lna = math.log(a)
        kappa_dot = math.exp(self._ln_kap_spline(lna))
        cs2 = math.exp(self._ln_cs2_spline(lna))
        k = self.k
        eps = self.nu_eps(a)

        dy[lo.A] = a * hc
        hdot, etadot, _, _ = self._metric_sources(y, a, hc, eps=eps)
        dy[lo.H] = hdot
        dy[lo.ETA] = etadot

        # CDM and baryons
        fg = y[lo.sl_fg]
        gg = y[lo.sl_gg]
        theta_b = y[lo.THETA_B]
        theta_g = 0.75 * k * fg[1]
        r = self._r_coef / a
        dy[lo.DELTA_C] = -0.5 * hdot
        dy[lo.DELTA_B] = -theta_b - 0.5 * hdot
        dy[lo.THETA_B] = (
            -hc * theta_b
            + cs2 * self.k2 * y[lo.DELTA_B]
            + r * kappa_dot * (theta_g - theta_b)
        )

        # Photon temperature hierarchy
        dfg = dy[lo.sl_fg]
        lg = lo.lmax_photon
        dfg[1:lg] = self._g_lo[1:lg] * fg[0 : lg - 1] - self._g_hi[1:lg] * fg[2 : lg + 1]
        dfg[3:lg] -= kappa_dot * fg[3:lg]
        pi_pol = fg[2] + gg[0] + gg[2]
        dfg[0] = -k * fg[1] - (2.0 / 3.0) * hdot
        dfg[1] += kappa_dot * ((4.0 / (3.0 * k)) * theta_b - fg[1])
        dfg[2] += (
            (4.0 / 15.0) * hdot
            + (8.0 / 5.0) * etadot
            + kappa_dot * (0.1 * pi_pol - fg[2])
        )
        dfg[lg] = k * fg[lg - 1] - (lg + 1.0) / tau * fg[lg] - kappa_dot * fg[lg]

        # Photon polarization hierarchy
        dgg = dy[lo.sl_gg]
        dgg[1:lg] = self._g_lo[1:lg] * gg[0 : lg - 1] - self._g_hi[1:lg] * gg[2 : lg + 1]
        dgg[0] = -k * gg[1]
        dgg[0:lg] -= kappa_dot * gg[0:lg]
        dgg[0] += 0.5 * kappa_dot * pi_pol
        dgg[2] += 0.1 * kappa_dot * pi_pol
        dgg[lg] = k * gg[lg - 1] - (lg + 1.0) / tau * gg[lg] - kappa_dot * gg[lg]

        self._fill_neutrinos(y, dy, tau, hdot, etadot)
        self._fill_massive_nu(y, dy, tau, a, hdot, etadot, eps=eps)
        return dy

    # ------------------------------------------------------------------
    # Tight-coupling RHS
    # ------------------------------------------------------------------

    def rhs_tca(self, tau: float, y: np.ndarray) -> np.ndarray:
        lo = self.layout
        dy = self._dy
        dy[:] = 0.0
        a = y[lo.A]
        hc = self.conformal_hubble(a)
        lna = math.log(a)
        kappa_dot = math.exp(self._ln_kap_spline(lna))
        cs2 = math.exp(self._ln_cs2_spline(lna))
        k = self.k
        k2 = self.k2
        eps = self.nu_eps(a)

        dy[lo.A] = a * hc
        hdot, etadot, _, _ = self._metric_sources(y, a, hc, eps=eps)
        dy[lo.H] = hdot
        dy[lo.ETA] = etadot

        fg = y[lo.sl_fg]
        delta_g = fg[0]
        theta_g = 0.75 * k * fg[1]
        delta_b = y[lo.DELTA_B]
        theta_b = y[lo.THETA_B]
        r = self._r_coef / a

        sigma_g = self.sigma_gamma_tca(theta_g, hdot, etadot, kappa_dot)
        ddelta_b = -theta_b - 0.5 * hdot
        ddelta_g = -(4.0 / 3.0) * theta_g - (2.0 / 3.0) * hdot

        # MB95 eq. (75): first-order slip theta_b' - theta_g'
        addot_a = (
            -0.5 * (self._grho83(a) + 3.0 * self._gpres83(a)) + hc * hc
        )
        slip = (2.0 * r / (1.0 + r)) * hc * (theta_b - theta_g) + (
            1.0 / (kappa_dot * (1.0 + r))
        ) * (
            -addot_a * theta_b
            - hc * k2 * 0.5 * delta_g
            + k2 * (cs2 * ddelta_b - 0.25 * ddelta_g)
        )

        # MB95 eq. (74): combined momentum equation + slip
        dtheta_b = (
            -hc * theta_b
            + cs2 * k2 * delta_b
            + r * (k2 * (0.25 * delta_g - sigma_g))
            + r * slip
        ) / (1.0 + r)
        dtheta_g = dtheta_b - slip

        dy[lo.DELTA_C] = -0.5 * hdot
        dy[lo.DELTA_B] = ddelta_b
        dy[lo.THETA_B] = dtheta_b
        dfg = dy[lo.sl_fg]
        dfg[0] = ddelta_g
        dfg[1] = (4.0 / (3.0 * k)) * dtheta_g
        # F_(l>=2) and polarization are algebraically slaved; their state
        # entries are synchronized at the hand-off to the full RHS.

        self._fill_neutrinos(y, dy, tau, hdot, etadot)
        self._fill_massive_nu(y, dy, tau, a, hdot, etadot, eps=eps)
        return dy

    # ------------------------------------------------------------------
    # Hand-off
    # ------------------------------------------------------------------

    def initialize_full_from_tca(self, y: np.ndarray, tau: float) -> None:
        """Populate the slaved moments when leaving tight coupling.

        Sets F2 to the quasi-static shear and the polarization moments
        to their tight-coupling equilibrium values
        G0 = (5/4) F2, G2 = (1/4) F2 (from Pi = 5/2 F2).
        """
        lo = self.layout
        a = y[lo.A]
        hc = self.conformal_hubble(a)
        kappa_dot = math.exp(self._ln_kap_spline(math.log(a)))
        hdot, etadot, _, _ = self._metric_sources(y, a, hc)
        theta_g = 0.75 * self.k * y[lo.sl_fg][1]
        sigma_g = self.sigma_gamma_tca(theta_g, hdot, etadot, kappa_dot)
        fg = y[lo.sl_fg]
        gg = y[lo.sl_gg]
        fg[2] = 2.0 * sigma_g
        fg[3:] = 0.0
        gg[:] = 0.0
        gg[0] = 1.25 * fg[2]
        gg[2] = 0.25 * fg[2]
