"""The run telemetry subsystem: metric primitives, the collector, the
JSON RunReport, the no-op sink, and the integrator instrumentation."""

import json
import math

import numpy as np
import pytest

from repro import Telemetry, NULL_TELEMETRY, RunReport
from repro.telemetry import Counter, Histogram, NullTelemetry, Timer
from repro.telemetry.report import SCHEMA


class TestCounter:
    def test_inc_and_merge(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        other = Counter("x", value=7)
        c.merge(other)
        assert c.value == 12

    def test_as_dict(self):
        assert Counter("x", value=3).as_dict() == {"value": 3}


class TestTimer:
    def test_accumulates_intervals(self):
        t = Timer("t")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total_seconds >= 0.0

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("t").stop()

    def test_add_and_merge(self):
        t = Timer("t")
        t.add(1.5, count=3)
        other = Timer("t")
        other.add(0.5)
        t.merge(other)
        assert t.total_seconds == pytest.approx(2.0)
        assert t.count == 4
        assert t.as_dict() == {"total_seconds": t.total_seconds, "count": 4}


class TestHistogram:
    def test_streaming_moments(self):
        h = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.n == 4
        assert h.mean == pytest.approx(2.5)
        assert h.std == pytest.approx(np.std([1, 2, 3, 4]))
        assert h.min == 1.0 and h.max == 4.0

    def test_empty(self):
        h = Histogram("h")
        assert math.isnan(h.mean)
        assert h.as_dict()["mean"] is None

    def test_merge(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.n == 2 and a.mean == 2.0 and a.max == 3.0


class TestTelemetryCollector:
    def test_get_or_create_semantics(self):
        t = Telemetry()
        t.count("ev")
        t.count("ev", 2)
        assert t.counters["ev"].value == 3
        assert t.timer("w") is t.timer("w")
        t.observe("h", 1.0)
        t.observe("h", 2.0)
        assert t.histograms["h"].n == 2

    def test_record_and_annotate_mode(self):
        t = Telemetry()
        t.record_mode(k=0.01, n_rhs=100)
        t.annotate_last_mode(ik=3, cpu_seconds=1.5)
        m = t.modes[0]
        assert (m.k, m.ik, m.n_rhs, m.cpu_seconds) == (0.01, 3, 100, 1.5)

    def test_record_traffic_labels_tags(self):
        t = Telemetry()
        stats = {
            "sent_by_tag": {3: {"count": 5, "bytes": 40}},
            "received_by_tag": {99: {"count": 1, "bytes": 8}},
        }
        t.record_traffic(0, "master", stats, tag_names={3: "WORK"})
        rt = t.traffic[0]
        assert rt.sent == {"WORK": {"count": 5, "bytes": 40}}
        assert rt.received == {"tag_99": {"count": 1, "bytes": 8}}
        assert rt.messages_sent == 5 and rt.bytes_received == 8

    def test_worker_payload_round_trip(self):
        worker = Telemetry()
        worker.record_mode(k=0.02, n_rhs=64, flops_est=1000)
        worker.count("retries", 2)
        worker.timer("busy").add(1.25, count=4)

        master = Telemetry()
        master.record_mode(k=0.01, n_rhs=32)
        master.merge_worker_payload(worker.worker_payload())

        assert [m.k for m in master.modes] == [0.01, 0.02]
        assert master.counters["retries"].value == 2
        assert master.timers["busy"].total_seconds == pytest.approx(1.25)
        assert master.timers["busy"].count == 4


class TestBatchMetrics:
    def _sample(self):
        from repro.telemetry import BatchMetrics

        return BatchMetrics(n_lanes=4, k_min=0.001, k_max=0.02, n_sweeps=100,
                            lane_steps_attempted=380, lane_steps_accepted=360,
                            lane_steps_rejected=20, lane_slots_idle=20,
                            wall_seconds=1.5)

    def test_occupancy_and_waste(self):
        b = self._sample()
        assert b.occupancy == pytest.approx(380 / 400)
        assert b.wasted_step_fraction == pytest.approx(20 / 380)
        from repro.telemetry import BatchMetrics

        empty = BatchMetrics(n_lanes=1)
        assert empty.occupancy == 0.0 and empty.wasted_step_fraction == 0.0

    def test_record_and_round_trip(self):
        from dataclasses import asdict

        from repro.telemetry import BatchMetrics

        t = Telemetry()
        t.record_batch(**asdict(self._sample()))
        assert len(t.batches) == 1
        back = BatchMetrics.from_dict(asdict(t.batches[0]))
        assert back == self._sample()

    def test_worker_payload_carries_batches(self):
        from dataclasses import asdict

        worker = Telemetry()
        worker.record_batch(**asdict(self._sample()))
        master = Telemetry()
        master.merge_worker_payload(worker.worker_payload())
        assert master.batches == [self._sample()]

    def test_report_totals_and_json(self):
        from dataclasses import asdict

        t = Telemetry()
        t.record_mode(k=0.01, ik=1, n_rhs=80)
        t.record_batch(**asdict(self._sample()))
        r = t.build_report()
        assert r.totals["n_batches"] == 1
        assert r.totals["lane_occupancy"] == pytest.approx(380 / 400)
        assert r.totals["wasted_step_fraction"] == pytest.approx(20 / 380)
        back = RunReport.from_json(r.to_json())
        assert back.to_dict() == r.to_dict()
        assert back.batches[0] == self._sample()

    def test_reports_without_batches_load_unchanged(self):
        # pre-batching v1 reports have no "batches" key: additive schema
        t = Telemetry()
        t.record_mode(k=0.01, ik=1, n_rhs=80)
        d = t.build_report().to_dict()
        d.pop("batches")
        r = RunReport.from_dict(d)
        assert r.batches == []
        assert r.totals["n_batches"] == 0
        assert r.totals["lane_occupancy"] == 0.0

    def test_null_sink_drops_batches(self):
        t = NullTelemetry()
        t.record_batch(n_lanes=4)
        assert not t.batches


class TestRunReport:
    def _sample(self):
        t = Telemetry()
        t.record_mode(k=0.01, ik=1, n_rhs=80, n_steps=8, n_rejected=2,
                      flops_est=5000, wall_seconds=0.5)
        t.record_mode(k=0.02, ik=2, n_rhs=160, n_steps=16, n_rejected=4,
                      flops_est=9000, wall_seconds=1.0)
        t.record_traffic(0, "master", {
            "sent_by_tag": {3: {"count": 2, "bytes": 16}},
            "received_by_tag": {4: {"count": 2, "bytes": 336}},
        }, tag_names={3: "WORK", 4: "HEADER"})
        t.record_worker(1, modes_done=2, busy_seconds=1.5, idle_seconds=0.5)
        return t.build_report(meta={"driver": "test"})

    def test_totals(self):
        r = self._sample()
        totals = r.totals
        assert totals["n_modes"] == 2
        assert totals["n_rhs"] == 240
        assert totals["n_rejected"] == 6
        assert totals["flops_est"] == 14000
        assert totals["messages_sent_by_tag"]["WORK"]["count"] == 2
        assert totals["worker_busy_seconds"] == pytest.approx(1.5)

    def test_json_round_trip(self):
        r = self._sample()
        back = RunReport.from_json(r.to_json())
        assert back.to_dict() == r.to_dict()
        assert json.loads(r.to_json())["schema"] == SCHEMA

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            RunReport.from_dict({"schema": "something/else"})

    def test_numpy_scalars_serialize(self):
        t = Telemetry()
        t.record_mode(k=np.float64(0.01), ik=np.int64(4), n_rhs=np.int64(7))
        r = t.build_report(meta={"nk": np.int64(8)})
        d = json.loads(r.to_json())
        assert d["modes"][0]["ik"] == 4
        assert d["meta"]["nk"] == 8

    def test_save_load(self, tmp_path):
        r = self._sample()
        p = r.save(tmp_path / "report.json")
        assert RunReport.load(p).to_dict() == r.to_dict()

    def test_worker_utilization(self):
        r = self._sample()
        assert r.workers[0].utilization == pytest.approx(0.75)


class TestNullSink:
    def test_singleton_is_disabled(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry().enabled is True

    def test_records_nothing(self):
        t = NullTelemetry()
        t.count("x", 5)
        t.observe("h", 1.0)
        with t.timer("w"):
            pass
        t.record_mode(k=0.01, n_rhs=10)
        t.annotate_last_mode(ik=1)
        t.record_traffic(0, "master", {"sent_by_tag": {}})
        t.record_worker(1, modes_done=3)
        t.merge_worker_payload({"modes": [{"k": 0.1}], "counters": {"c": 1},
                                "timers": {}})
        assert not t.counters and not t.timers and not t.histograms
        assert not t.modes and not t.traffic and not t.workers
        report = t.build_report()
        assert report.totals["n_modes"] == 0

    def test_null_timer_is_shared_and_inert(self):
        t = NullTelemetry()
        timer = t.timer("a")
        assert timer is t.timer("b")
        timer.start()
        assert timer.stop() == 0.0
        timer.add(5.0)
        assert timer.as_dict() == {"total_seconds": 0.0, "count": 0}


class TestIntegratorInstrumentation:
    def test_flop_accounting_matches_step_count(self):
        from repro.integrators import DVERK, IntegratorStats

        d = DVERK(lambda t, y: -y, rtol=1e-8, atol=1e-12)
        stats = IntegratorStats()
        d.integrate(np.array([1.0]), 0.0, 5.0, stats=stats)
        s = d.tableau.n_stages
        step_flops = d._flops_per_step(1)
        attempts = stats.n_steps + stats.n_rejected
        assert stats.n_rhs == 1 + s * attempts  # f0 + s per attempt
        assert stats.n_flops == step_flops // s + attempts * step_flops

    def test_flops_per_rhs_override(self):
        from repro.integrators import DVERK

        base = DVERK(lambda t, y: -y)
        custom = DVERK(lambda t, y: -y, flops_per_rhs=1000.0)
        assert custom._flops_per_step(4) > base._flops_per_step(4)

    def test_stats_merge_includes_flops(self):
        from repro.integrators import IntegratorStats

        a = IntegratorStats(n_steps=1, n_rejected=2, n_rhs=3, n_flops=100)
        a.merge(IntegratorStats(n_steps=10, n_rejected=20, n_rhs=30,
                                n_flops=200))
        assert (a.n_steps, a.n_rejected, a.n_rhs, a.n_flops) == (11, 22, 33,
                                                                 300)

    def test_controller_counts_accepts_and_rejects(self):
        from repro.integrators import StepController

        c = StepController(order=6)
        assert c.accept(0.5)        # err <= 1: accepted
        assert not c.accept(2.0)    # err > 1: rejected
        assert c.accept(0.1)
        assert c.n_accepted == 2
        assert c.n_rejected == 1


class TestPhysicsUnaffected:
    """Telemetry enabled vs disabled must be bit-identical physics."""

    def test_evolve_mode_bit_identical(self, bg_scdm, thermo_scdm):
        from repro.perturbations import evolve_mode

        kwargs = dict(lmax_photon=8, lmax_nu=8, rtol=3e-4)
        plain = evolve_mode(bg_scdm, thermo_scdm, 0.01, **kwargs)
        telemetry = Telemetry()
        metered = evolve_mode(bg_scdm, thermo_scdm, 0.01, telemetry=telemetry,
                              **kwargs)

        assert np.array_equal(plain.y_final, metered.y_final)
        assert plain.tau_end == metered.tau_end
        assert plain.stats.n_rhs == metered.stats.n_rhs
        assert plain.stats.n_steps == metered.stats.n_steps

        # ... and the enabled collector actually measured the mode
        assert len(telemetry.modes) == 1
        m = telemetry.modes[0]
        assert m.k == 0.01
        assert m.n_rhs == metered.stats.n_rhs
        assert m.flops_est == metered.stats.n_flops > 0
        assert m.tau_switch > 0.0
        assert m.wall_seconds >= m.tca_wall_seconds >= 0.0
