"""Batched k-mode engine: equivalence with the per-mode reference path.

The batched system/driver pair must reproduce the serial trajectories
lane for lane — same accepted/rejected step sequences, golden-level
(rtol=1e-8) observables — while the lane masking lets ragged batches
(different stiffness, different end times) advance independently.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import KGrid, LingerConfig, Telemetry, run_linger
from repro.errors import ParameterError
from repro.integrators import DVERK, BatchedDVERK
from repro.linger.serial import dispatch_chunks
from repro.perturbations import (
    PerturbationSystem,
    PerturbationSystemBatch,
    StateLayout,
    adiabatic_initial_conditions,
    evolve_mode,
    evolve_modes_batched,
)
from repro.perturbations.evolve import tau_initial
from tests.test_golden_regression import (
    GOLDEN_CL,
    GOLDEN_CONFIG,
    GOLDEN_KGRID,
    GOLDEN_TK,
    RTOL,
    snapshot_cl,
    snapshot_tk,
)


# ---------------------------------------------------------------------------
# Golden-level equivalence of the full pipeline
# ---------------------------------------------------------------------------


@pytest.mark.golden
@pytest.mark.parametrize("batch_size", [1, 4])
def test_batched_run_matches_goldens(scdm, bg_scdm, thermo_scdm,
                                     batch_size):
    """run_linger(batch_size=...) reproduces the frozen C_l and
    transfer snapshots at the golden tolerance."""
    kg = KGrid.from_k(np.geomspace(
        GOLDEN_KGRID["k_min"], GOLDEN_KGRID["k_max"], GOLDEN_KGRID["nk"]))
    result = run_linger(scdm, kg, LingerConfig(**GOLDEN_CONFIG),
                        background=bg_scdm, thermo=thermo_scdm,
                        batch_size=batch_size)
    for path, fresh in ((GOLDEN_CL, snapshot_cl(result)),
                        (GOLDEN_TK, snapshot_tk(result))):
        stored = json.loads(path.read_text())
        for key in fresh:
            if key == "settings":
                continue
            np.testing.assert_allclose(
                np.asarray(fresh[key], dtype=float),
                np.asarray(stored[key], dtype=float),
                rtol=RTOL, atol=0.0,
                err_msg=f"batch_size={batch_size}: {path.name}:{key}",
            )


def test_batched_evolution_reproduces_serial_step_sequence(bg_scdm,
                                                           thermo_scdm):
    """Every lane takes the *same* accept/reject sequence as the serial
    driver integrating that k alone, and lands on the same state."""
    ks = np.geomspace(1e-3, 0.02, 4)
    kwargs = dict(lmax_photon=8, lmax_nu=8, rtol=3e-4)
    batched = evolve_modes_batched(bg_scdm, thermo_scdm, ks, **kwargs)
    for k, mode_b in zip(ks, batched):
        mode_s = evolve_mode(bg_scdm, thermo_scdm, float(k), **kwargs)
        assert mode_b.stats.n_steps == mode_s.stats.n_steps
        assert mode_b.stats.n_rejected == mode_s.stats.n_rejected
        assert mode_b.stats.n_rhs == mode_s.stats.n_rhs
        np.testing.assert_allclose(mode_b.y_final, mode_s.y_final,
                                   rtol=1e-8, atol=1e-300)


def test_batched_rhs_rows_match_serial(bg_scdm, thermo_scdm):
    """One batched RHS evaluation equals the per-k serial RHS row by
    row (floating-point roundoff only)."""
    ks = np.geomspace(3e-4, 0.05, 5)
    layout = StateLayout(lmax_photon=10, lmax_nu=8, nq=0, lmax_massive_nu=0)
    batch = PerturbationSystemBatch(bg_scdm, thermo_scdm, ks, layout)
    Y = np.empty((ks.size, layout.n_state))
    taus = np.empty(ks.size)
    for b, k in enumerate(ks):
        taus[b] = tau_initial(float(k))
        Y[b] = adiabatic_initial_conditions(layout, bg_scdm, float(k),
                                            float(taus[b]))
    # all lanes share one evaluation tau (the RHS is just a function of
    # (tau, Y); it need not be the IC time)
    tau = np.full(ks.size, 2.0 * float(taus.max()))
    for name in ("rhs_full", "rhs_tca"):
        dY = np.array(getattr(batch, name)(tau, Y), copy=True)
        for b, k in enumerate(ks):
            serial = PerturbationSystem(bg_scdm, thermo_scdm, float(k),
                                        layout)
            ref = getattr(serial, name)(float(tau[b]), Y[b])
            np.testing.assert_allclose(dY[b], ref, rtol=1e-12, atol=1e-300,
                                       err_msg=f"{name} lane {b} (k={k})")


# ---------------------------------------------------------------------------
# Lane masking on toy ODEs
# ---------------------------------------------------------------------------


def _decay_rhs(rates):
    rates = np.asarray(rates, dtype=float)

    def rhs(t, Y):
        return -rates[:, None] * Y

    return rhs


def test_lane_masks_reject_one_lane_while_others_advance():
    """A stiff lane racks up rejections without disturbing the step
    sequences of its batch mates."""
    rates = np.array([1.0, 2.0, 400.0])  # lane 2 is stiff
    B = rates.size
    y0 = np.ones((B, 2))
    t0 = np.zeros(B)
    t1 = np.full(B, 2.0)
    drv = BatchedDVERK(_decay_rhs(rates), rtol=1e-8, atol=1e-12,
                       first_step=0.5)
    res = drv.integrate(y0, t0, t1)
    assert res.lane_rejected[2] > 0
    # mild lanes behave exactly as if integrated alone
    for b in (0, 1):
        solo = BatchedDVERK(_decay_rhs(rates[[b]]), rtol=1e-8, atol=1e-12,
                            first_step=0.5)
        ref = solo.integrate(y0[[b]], t0[[b]], t1[[b]])
        assert res.lane_steps[b] == ref.lane_steps[0]
        assert res.lane_rejected[b] == ref.lane_rejected[0]
        # identical step sequence; state agrees to BLAS-contraction
        # roundoff (stage sums vectorize differently per batch width)
        np.testing.assert_allclose(res.y[b], ref.y[0], rtol=1e-13)
    np.testing.assert_allclose(res.y[:, 0], np.exp(-rates * 2.0),
                               rtol=1e-6, atol=1e-10)


def test_lane_finishes_early_and_parks():
    """A lane with a short span parks (frozen state, idle slots
    accounted) while the rest of the batch keeps stepping."""
    rates = np.array([1.0, 1.0])
    y0 = np.ones((2, 1))
    t0 = np.zeros(2)
    t1 = np.array([0.1, 5.0])  # lane 0 is done almost immediately
    drv = BatchedDVERK(_decay_rhs(rates), rtol=1e-6, atol=1e-12)
    res = drv.integrate(y0, t0, t1)
    assert res.t[0] == 0.1 and res.t[1] == 5.0
    assert res.batch.lane_slots_idle > 0
    assert res.lane_steps[1] > res.lane_steps[0]
    assert 0.0 < res.batch.occupancy < 1.0
    np.testing.assert_allclose(res.y[:, 0], np.exp(-rates * t1), rtol=1e-4)


def test_batched_driver_matches_serial_dverk_per_lane():
    """Lockstep batching is a pure restructuring: each lane's accepted
    trajectory equals the serial DVERK solution of that lane."""
    rates = np.array([0.5, 3.0, 10.0])
    y0 = np.vstack([np.ones(3), 2.0 * np.ones(3), 0.5 * np.ones(3)])
    t1 = np.full(3, 1.5)
    res = BatchedDVERK(_decay_rhs(rates), rtol=1e-7,
                       atol=1e-12).integrate(y0, np.zeros(3), t1)
    for b, lam in enumerate(rates):
        serial = DVERK(lambda t, y, lam=lam: -lam * y, rtol=1e-7,
                       atol=1e-12).integrate(y0[b], 0.0, 1.5)
        assert res.lane_steps[b] == serial.stats.n_steps
        assert res.lane_rejected[b] == serial.stats.n_rejected
        np.testing.assert_allclose(res.y[b], serial.y, rtol=1e-12)


def test_stop_points_hit_exactly_per_lane():
    """Interior stop points snap per lane and fire the callback."""
    rates = np.array([1.0, 2.0])
    y0 = np.ones((2, 1))
    stops = [[0.25, 0.5], [0.4]]
    seen: list[tuple[int, float]] = []
    drv = BatchedDVERK(_decay_rhs(rates), rtol=1e-6, atol=1e-12)
    res = drv.integrate(y0, np.zeros(2), np.full(2, 1.0),
                        stop_points=stops,
                        on_stop=lambda b, t, y: seen.append((b, t)))
    assert res.t.tolist() == [1.0, 1.0]
    for b, pts in enumerate(stops):
        hit = [t for bb, t in seen if bb == b]
        assert hit[:-1] == pts and hit[-1] == 1.0


# ---------------------------------------------------------------------------
# Dispatch chunking
# ---------------------------------------------------------------------------


def test_dispatch_chunks_partition_and_order():
    kg = KGrid.from_k(np.geomspace(1e-4, 0.1, 10))
    cfg = LingerConfig(lmax_photon=8)
    chunks = dispatch_chunks(kg, cfg, 10000.0, 4)
    flat = [i for c in chunks for i in c]
    assert flat == list(kg.dispatch_order)  # largest-k-first preserved
    assert max(len(c) for c in chunks) <= 4
    with pytest.raises(ParameterError):
        dispatch_chunks(kg, cfg, 10000.0, 0)
    with pytest.raises(ParameterError):
        run_linger(None, kg, cfg, batch_size=0)


def test_dispatch_chunks_split_on_lmax_change():
    kg = KGrid.from_k(np.geomspace(1e-4, 0.1, 12))
    cfg = LingerConfig(lmax_photon=8, lmax_mode="scaled", lmax_cap=60)
    tau0 = 10000.0
    chunks = dispatch_chunks(kg, cfg, tau0, 6)
    for chunk in chunks:
        lmaxes = {cfg.lmax_for_k(float(kg.k[i]), tau0) for i in chunk}
        assert len(lmaxes) == 1


def test_batch_telemetry_records_occupancy(scdm, bg_scdm, thermo_scdm):
    """A batched run books its sweeps/occupancy into the RunReport."""
    kg = KGrid.from_k(np.geomspace(1e-3, 0.01, 4))
    cfg = LingerConfig(lmax_photon=8, lmax_nu=8, rtol=3e-4,
                       record_sources=False, keep_mode_results=False)
    telemetry = Telemetry()
    run_linger(scdm, kg, cfg, background=bg_scdm, thermo=thermo_scdm,
               batch_size=4, telemetry=telemetry)
    report = telemetry.build_report()
    assert len(report.batches) == 1
    batch = report.batches[0]
    assert batch.n_lanes == 4
    assert batch.n_sweeps > 0
    assert 0.0 < batch.occupancy <= 1.0
    assert 0.0 <= batch.wasted_step_fraction < 1.0
    totals = report.totals
    assert totals["n_batches"] == 1
    assert totals["lane_occupancy"] == pytest.approx(batch.occupancy)
    # per-mode records got their grid indices patched in
    assert sorted(m.ik for m in report.modes) == [1, 2, 3, 4]
